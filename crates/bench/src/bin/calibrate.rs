//! Calibration sweep: prints the key paper targets for a range of
//! enclave-crypto bandwidths (the dominant free parameter). Used while
//! fitting the cost model; kept for reproducibility of the calibration.

use hix_bench::{measure_both_with, MatrixAt};
use hix_sim::CostModel;
use hix_workloads::matrix::MatrixOp;
use hix_workloads::rodinia_suite;

fn main() {
    println!(
        "{:>6} {:>9} {:>9} {:>7} {:>7} {:>7} {:>7} {:>7} {:>7}",
        "E GB/s", "mul11264", "add11264", "PF", "BP", "NW", "GS", "HS", "avg9"
    );
    for e in [1600u64, 1700, 1800, 1900, 2000, 2200] {
        let model = CostModel::builder().enclave_crypto_bw(e * 1_000_000).build();
        let mul = measure_both_with(
            &MatrixAt { op: MatrixOp::Mul, n: 11264 },
            "mul",
            model.clone(),
        );
        let add = measure_both_with(
            &MatrixAt { op: MatrixOp::Add, n: 11264 },
            "add",
            model.clone(),
        );
        let mut per = std::collections::BTreeMap::new();
        let mut sum = 0.0;
        for w in rodinia_suite() {
            let row = measure_both_with(w.as_ref(), w.profile(&model).abbrev, model.clone());
            sum += row.overhead_pct();
            per.insert(row.label.clone(), row.overhead_pct());
        }
        println!(
            "{:>6.2} {:>8.1}% {:>8.2}x {:>6.1}% {:>6.1}% {:>6.1}% {:>6.1}% {:>6.1}% {:>6.1}%",
            e as f64 / 1000.0,
            mul.overhead_pct(),
            add.slowdown(),
            per["PF"],
            per["BP"],
            per["NW"],
            per["GS"],
            per["HS"],
            sum / 9.0
        );
    }
}
