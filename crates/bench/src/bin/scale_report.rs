//! Scale report: the weighted-fair scheduler's trajectory from 4 to
//! 10,000 tenants under seeded fault profiles. Sweeps users ∈ {4, 100,
//! 1k, 10k} × profiles {none, light, heavy} through `run_scaled` with a
//! bounded resident set (sealed-state parking), prints the markdown
//! table behind the EXPERIMENTS.md scale section, and emits
//! `BENCH_scale.json` — the repo's perf-trajectory file. Every cell is
//! self-checked: same-seed reruns must be bit-identical (outcome and
//! metrics snapshot), healthy tenants must finish within the fairness
//! bound, degraded profiles must never starve a healthy tenant, and the
//! makespan must stay sublinear in the tenant count.
//!
//! Usage:
//!   scale_report [OUT.json]            full sweep (10k included)
//!   scale_report --smoke [OUT.json]    4- and 100-user columns only
//!   scale_report --check FILE.json     parse and validate a report

use std::fmt::Write as _;

use hix_core::multiuser::{
    run_scaled, seeded_session_faults, FaultProfile, Mode, ScaleOutcome, SchedulerConfig,
    SessionFaults, SessionSpec, TaskSpec,
};
use hix_bench::json::{parse_json, Json};
use hix_obs::{fmt_ns, percentile_sorted, percentile_sorted_pm, Metrics};
use hix_sim::{CostModel, Nanos};

/// One seed drives the whole sweep (per-cell populations are derived
/// from it and the cell coordinates, so cells stay independent).
const SEED: u64 = 7;
/// Admission bound for the sweep: 1k and 10k columns must park.
const MAX_RESIDENT: usize = 256;
/// Healthy tenants must all finish within this completion-time ratio.
const FAIR_BOUND: f64 = 2.0;
/// Degraded-profile slack: a healthy tenant under heavy faults may pay
/// at most this factor over the fault-free makespan of the same column.
const DEGRADED_SLACK: f64 = 1.5;

fn fail(msg: &str) -> ! {
    eprintln!("scale_report: FAILED: {msg}");
    std::process::exit(1);
}

/// The Figure 8/9 "bp-like" profile every tenant runs.
fn task() -> TaskSpec {
    TaskSpec {
        name: "bp-like".into(),
        htod: 117 << 20,
        dtoh: 42 << 20,
        kernel_time: Nanos::from_millis(22),
        launches: 2,
    }
}

struct Cell {
    users: usize,
    profile: FaultProfile,
    outcome: ScaleOutcome,
    faults: Vec<SessionFaults>,
    /// Fairness over strictly healthy tenants (no fault burden at all):
    /// max/min completion-time ratio.
    fairness: f64,
    healthy_wait_p99: u64,
    healthy_wait_p999: u64,
}

fn healthy_indices(faults: &[SessionFaults]) -> Vec<usize> {
    faults
        .iter()
        .enumerate()
        .filter(|(_, f)| **f == SessionFaults::default())
        .map(|(i, _)| i)
        .collect()
}

fn run_cell(model: &CostModel, users: usize, profile: FaultProfile) -> Cell {
    let faults = seeded_session_faults(SEED ^ (users as u64).rotate_left(17), users, profile);
    let t = task();
    let sessions: Vec<SessionSpec> = faults
        .iter()
        .map(|f| SessionSpec {
            task: t.clone(),
            weight: 1,
            faults: *f,
        })
        .collect();
    let mut cfg = SchedulerConfig::new(model);
    cfg.max_resident = MAX_RESIDENT;

    // Same-seed determinism: two fresh runs must agree bit-for-bit in
    // outcome and in every recorded metric.
    let m1 = Metrics::new();
    let outcome = run_scaled(model, &sessions, Mode::Hix, &cfg, Some(&m1));
    let m2 = Metrics::new();
    let again = run_scaled(model, &sessions, Mode::Hix, &cfg, Some(&m2));
    if outcome != again {
        fail(&format!("{users}/{}: rerun diverged", profile.name()));
    }
    if m1.snapshot() != m2.snapshot() {
        fail(&format!(
            "{users}/{}: metrics snapshot not deterministic",
            profile.name()
        ));
    }

    let healthy = healthy_indices(&faults);
    let fairness = {
        let comps: Vec<u64> = healthy
            .iter()
            .map(|&i| outcome.completions[i].as_nanos())
            .collect();
        match (comps.iter().max(), comps.iter().min()) {
            (Some(&max), Some(&min)) if min > 0 => max as f64 / min as f64,
            _ => 1.0,
        }
    };
    let mut waits: Vec<u64> = healthy
        .iter()
        .map(|&i| outcome.gpu_wait[i].as_nanos())
        .collect();
    waits.sort_unstable();
    let healthy_wait_p99 = percentile_sorted(&waits, 99).unwrap_or(0);
    // The p99.9 tail only separates from p99 past a thousand healthy
    // tenants — exactly the 10k column this sweep exists for.
    let healthy_wait_p999 = percentile_sorted_pm(&waits, 999).unwrap_or(0);
    Cell {
        users,
        profile,
        outcome,
        faults,
        fairness,
        healthy_wait_p99,
        healthy_wait_p999,
    }
}

fn check_cells(model: &CostModel, cells: &[Cell]) {
    let single = run_scaled(
        model,
        &[SessionSpec::new(task())],
        Mode::Hix,
        &SchedulerConfig::new(model),
        None,
    )
    .makespan;
    for c in cells {
        let tag = format!("{}/{}", c.users, c.profile.name());
        // Fairness: every healthy tenant finishes within one round.
        if c.fairness > FAIR_BOUND {
            fail(&format!("{tag}: fairness ratio {:.3} > {FAIR_BOUND}", c.fairness));
        }
        // Sublinear trajectory: the per-user makespan must shrink as the
        // population grows (host work overlaps; only the serialized GPU
        // time scales), even with the parking churn of the bounded
        // resident set. The smallest column anchors each profile.
        let base = cells
            .iter()
            .filter(|b| b.profile == c.profile)
            .min_by_key(|b| b.users)
            .expect("cells nonempty");
        if c.users > base.users
            && c.outcome.makespan.as_nanos() * base.users as u64
                >= base.outcome.makespan.as_nanos() * c.users as u64
        {
            fail(&format!(
                "{tag}: per-user makespan {} not below the {}-user anchor {}",
                fmt_ns(c.outcome.makespan.as_nanos() / c.users as u64),
                base.users,
                fmt_ns(base.outcome.makespan.as_nanos() / base.users as u64),
            ));
        }
        // Absolute bound at scale: n tenants through one GPU must beat n
        // serial single-tenant runs outright.
        if c.users > MAX_RESIDENT
            && c.outcome.makespan.as_nanos() >= single.as_nanos() * c.users as u64
        {
            fail(&format!(
                "{tag}: makespan {} not sublinear vs {} x single {}",
                c.outcome.makespan, c.users, single
            ));
        }
        // Residency never exceeds the admission bound; oversubscribed
        // columns must actually exercise parking.
        if c.outcome.peak_resident > MAX_RESIDENT {
            fail(&format!("{tag}: peak resident {}", c.outcome.peak_resident));
        }
        if c.users > MAX_RESIDENT && c.outcome.parks == 0 {
            fail(&format!("{tag}: oversubscribed column never parked"));
        }
        // Evictions appear exactly where the population has repeat
        // offenders.
        let expected_evicted = c
            .faults
            .iter()
            .filter(|f| f.tdr_resets >= hix_core::multiuser::EVICT_AFTER)
            .count();
        let got_evicted = c.outcome.evicted.iter().filter(|e| **e).count();
        if expected_evicted != got_evicted {
            fail(&format!(
                "{tag}: {got_evicted} evicted, population has {expected_evicted} repeat offenders"
            ));
        }
    }
    // Degraded profiles never starve a healthy tenant: the slowest
    // healthy completion under faults stays within slack of the
    // fault-free makespan at the same scale.
    for c in cells {
        if c.profile == FaultProfile::None {
            continue;
        }
        let baseline = cells
            .iter()
            .find(|b| b.users == c.users && b.profile == FaultProfile::None)
            .expect("none column exists");
        let worst_healthy = healthy_indices(&c.faults)
            .iter()
            .map(|&i| c.outcome.completions[i].as_nanos())
            .max()
            .unwrap_or(0) as f64;
        let bound = baseline.outcome.makespan.as_nanos() as f64 * DEGRADED_SLACK;
        if worst_healthy > bound {
            fail(&format!(
                "{}/{}: healthy tenant starved ({} > {:.0})",
                c.users,
                c.profile.name(),
                worst_healthy,
                bound
            ));
        }
    }
}

// ---- JSON emit (stable key order) ----

fn emit_json(model: &CostModel, cells: &[Cell]) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"bench\": \"scale_report\",");
    let _ = writeln!(s, "  \"seed\": {SEED},");
    let _ = writeln!(s, "  \"quantum_ns\": {},", model.sched_quantum.as_nanos());
    let _ = writeln!(s, "  \"max_resident\": {MAX_RESIDENT},");
    s.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let o = &c.outcome;
        let _ = write!(
            s,
            "    {{\"users\": {}, \"profile\": \"{}\", \"makespan_ns\": {}, \"per_user_ns\": {}, \"fairness\": {:.4}, \"ctx_switches\": {}, \"parks\": {}, \"unparks\": {}, \"peak_resident\": {}, \"evicted\": {}, \"healthy_wait_p99_ns\": {}, \"healthy_wait_p999_ns\": {}}}",
            c.users,
            c.profile.name(),
            o.makespan.as_nanos(),
            o.makespan.as_nanos() / c.users as u64,
            c.fairness,
            o.ctx_switches,
            o.parks,
            o.unparks,
            o.peak_resident,
            o.evicted.iter().filter(|e| **e).count(),
            c.healthy_wait_p99,
            c.healthy_wait_p999,
        );
        s.push_str(if i + 1 < cells.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ]\n}\n");
    s
}

// ---- JSON check (parser shared via hix_bench::json) ----

/// Required keys of each cell, in emission order.
const CELL_KEYS: [&str; 12] = [
    "users",
    "profile",
    "makespan_ns",
    "per_user_ns",
    "fairness",
    "ctx_switches",
    "parks",
    "unparks",
    "peak_resident",
    "evicted",
    "healthy_wait_p99_ns",
    "healthy_wait_p999_ns",
];

fn check_file(path: &str) {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => fail(&format!("cannot read {path}: {e}")),
    };
    let json = match parse_json(&text) {
        Ok(j) => j,
        Err(e) => fail(&format!("{path}: not valid JSON: {e}")),
    };
    let Json::Obj(top) = json else {
        fail(&format!("{path}: top level is not an object"));
    };
    let top_keys: Vec<&str> = top.iter().map(|(k, _)| k.as_str()).collect();
    if top_keys != ["bench", "seed", "quantum_ns", "max_resident", "cells"] {
        fail(&format!("{path}: unstable top-level keys {top_keys:?}"));
    }
    if top[0].1 != Json::Str("scale_report".into()) {
        fail(&format!("{path}: wrong bench name"));
    }
    let Json::Arr(cells) = &top[4].1 else {
        fail(&format!("{path}: cells is not an array"));
    };
    if cells.is_empty() {
        fail(&format!("{path}: no cells"));
    }
    for (n, cell) in cells.iter().enumerate() {
        let Json::Obj(fields) = cell else {
            fail(&format!("{path}: cell {n} is not an object"));
        };
        let keys: Vec<&str> = fields.iter().map(|(k, _)| k.as_str()).collect();
        if keys != CELL_KEYS {
            fail(&format!("{path}: cell {n} has unstable keys {keys:?}"));
        }
        for (k, v) in fields {
            match (k.as_str(), v) {
                ("profile", Json::Str(p)) if FaultProfile::parse(p).is_some() => {}
                ("profile", other) => fail(&format!("{path}: cell {n}: bad profile {other:?}")),
                (_, Json::Num(x)) if *x >= 0.0 => {}
                (k, _) => fail(&format!("{path}: cell {n}: key {k} is not a number")),
            }
        }
        let tail = |key: &str| cell.get(key).and_then(Json::as_num).unwrap_or(0.0);
        if tail("healthy_wait_p999_ns") < tail("healthy_wait_p99_ns") {
            fail(&format!("{path}: cell {n}: p99.9 wait below p99"));
        }
    }
    println!("scale_report: {path}: OK ({} cells, stable keys)", cells.len());
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--check") {
        let Some(path) = args.get(1) else {
            fail("--check needs a file path");
        };
        check_file(path);
        return;
    }
    let smoke = args.first().map(String::as_str) == Some("--smoke");
    let out_path = args
        .get(usize::from(smoke))
        .cloned()
        .unwrap_or_else(|| "BENCH_scale.json".into());

    let model = CostModel::paper();
    let sizes: &[usize] = if smoke { &[4, 100] } else { &[4, 100, 1_000, 10_000] };
    let profiles = [FaultProfile::None, FaultProfile::Light, FaultProfile::Heavy];

    let mut cells = Vec::new();
    for &users in sizes {
        for profile in profiles {
            cells.push(run_cell(&model, users, profile));
        }
    }
    check_cells(&model, &cells);

    println!("# Scale sweep (bp-like tenants, max_resident = {MAX_RESIDENT}, seed {SEED})\n");
    println!("| users | profile | makespan | per-user | fairness | ctx switches | parks | evicted | healthy wait p99 | p99.9 |");
    println!("|------:|---------|---------:|---------:|---------:|-------------:|------:|--------:|-----------------:|------:|");
    for c in &cells {
        let o = &c.outcome;
        println!(
            "| {} | {} | {} | {} | {:.3} | {} | {} | {} | {} | {} |",
            c.users,
            c.profile.name(),
            fmt_ns(o.makespan.as_nanos()),
            fmt_ns(o.makespan.as_nanos() / c.users as u64),
            c.fairness,
            o.ctx_switches,
            o.parks,
            o.evicted.iter().filter(|e| **e).count(),
            fmt_ns(c.healthy_wait_p99),
            fmt_ns(c.healthy_wait_p999),
        );
    }

    let json = emit_json(&model, &cells);
    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        if !dir.as_os_str().is_empty() {
            let _ = std::fs::create_dir_all(dir);
        }
    }
    if let Err(e) = std::fs::write(&out_path, &json) {
        fail(&format!("cannot write {out_path}: {e}"));
    }
    println!("\nscale_report: all self-checks passed; wrote {out_path}");
}
