//! Table 2: the HIX TCB breakdown — component × attack surface ×
//! protection mechanism. Each row is backed by an executable enforcement
//! check (the `hix-attacks` scenarios and the platform tests); this
//! binary prints the matrix and re-runs the quick checks.

use hix_attacks::run_all;
use std::path::Path;

struct Row {
    component: &'static str,
    surface: &'static str,
    access_restriction: &'static str,
    encryption: &'static str,
    enforced_by: &'static str,
}

fn main() {
    let rows = [
        Row {
            component: "GPU Enclave",
            surface: "MemAcc.",
            access_restriction: "SGX EPC protection",
            encryption: "(MEE)",
            enforced_by: "machine::tests::enclave_build_and_epc_protection",
        },
        Row {
            component: "GECS & TGMR",
            surface: "MemAcc. & HIX instrs",
            access_restriction: "SGX EPC protection",
            encryption: "(MEE)",
            enforced_by: "hix state is processor-internal; only EGCREATE/EGADD mutate it",
        },
        Row {
            component: "GPU BIOS",
            surface: "MMIO",
            access_restriction: "MMU (TGMR) + measurement",
            encryption: "-",
            enforced_by: "gpu_enclave::tests::bios_mismatch_refused_and_gpu_returned",
        },
        Row {
            component: "GPU Registers",
            surface: "MMIO",
            access_restriction: "MMU (TGMR)",
            encryption: "-",
            enforced_by: "attacks::mmio_translation_attacks",
        },
        Row {
            component: "GPU Memory",
            surface: "MMIO & DMA",
            access_restriction: "MMU (TGMR)",
            encryption: "OCB-AES",
            enforced_by: "attacks::dma_redirection_attack",
        },
        Row {
            component: "PCIe Infrastructure",
            surface: "MMIO (config)",
            access_restriction: "PCIe root complex lockdown",
            encryption: "-",
            enforced_by: "attacks::pcie_routing_attacks",
        },
        Row {
            component: "User Enclave & HIX Library",
            surface: "MemAcc.",
            access_restriction: "SGX EPC protection",
            encryption: "(MEE)",
            enforced_by: "machine::tests::os_phys_reads_of_epc_see_no_plaintext",
        },
        Row {
            component: "Inter-Enclave Shared Memory",
            surface: "MemAcc. & DMA",
            access_restriction: "-",
            encryption: "OCB-AES",
            enforced_by: "attacks::shared_memory_snoop_and_tamper",
        },
    ];
    println!("== Table 2: HIX Trusted Computing Base breakdown ==\n");
    println!(
        "{:<28} {:<22} {:<28} {:<9} Enforced by",
        "Component", "Attack surface", "Access restriction", "Crypto"
    );
    for r in &rows {
        println!(
            "{:<28} {:<22} {:<28} {:<9} {}",
            r.component, r.surface, r.access_restriction, r.encryption, r.enforced_by
        );
    }
    print_loc_breakdown();

    println!("\nre-running the scenario suite to confirm every row is enforced…");
    let reports = run_all();
    for report in &reports {
        assert!(report.verdict.held(), "{} breached", report.name);
    }
    println!("{} scenarios: all defenses held", reports.len());
}

/// Role of each workspace crate in the TCB accounting. Everything is
/// in-tree — since the `hix-testkit` migration the verify path has zero
/// external dependencies, so these counts cover the entire code base.
const CRATE_ROLES: &[(&str, &str)] = &[
    ("core", "TCB: GPU-enclave + trusted user runtime"),
    ("crypto", "TCB: enclave/in-GPU crypto"),
    ("driver", "TCB: Gdev-like driver (runs in GPU enclave)"),
    ("platform", "hardware model: SGX/MMU/walker/GECS/TGMR"),
    ("pcie", "hardware model: config space, routing, lockdown"),
    ("gpu", "hardware model: device, VRAM, engines"),
    ("sim", "harness: virtual clock + cost model"),
    ("workloads", "evaluation: Rodinia + matrix workloads"),
    ("attacks", "evaluation: privileged-adversary scenarios"),
    ("bench", "evaluation: figure/table harnesses"),
    ("testkit", "test harness: PRNG/property/bench (zero-dep)"),
];

/// Recursively counts non-empty lines across the `.rs` files under
/// `dir`.
fn count_rs_lines(dir: &Path) -> (u64, u64) {
    let (mut files, mut lines) = (0u64, 0u64);
    let Ok(entries) = std::fs::read_dir(dir) else {
        return (0, 0);
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            let (f, l) = count_rs_lines(&path);
            files += f;
            lines += l;
        } else if path.extension().is_some_and(|e| e == "rs") {
            if let Ok(text) = std::fs::read_to_string(&path) {
                files += 1;
                lines += text.lines().filter(|l| !l.trim().is_empty()).count() as u64;
            }
        }
    }
    (files, lines)
}

/// Prints the per-crate LoC breakdown backing the TCB discussion. The
/// table must cover *every* workspace crate — a crate missing from
/// [`CRATE_ROLES`] (e.g. a future addition) fails loudly rather than
/// silently under-reporting the TCB.
fn print_loc_breakdown() {
    let crates_dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("..");
    println!("\n== per-crate size (non-empty Rust lines; whole crate incl. tests) ==\n");
    println!("{:<14} {:>6} {:>8}  role", "crate", "files", "lines");
    let (mut total_files, mut total_lines, mut tcb_lines) = (0u64, 0u64, 0u64);
    let mut listed = Vec::new();
    for (name, role) in CRATE_ROLES {
        let (files, lines) = count_rs_lines(&crates_dir.join(name));
        assert!(lines > 0, "crate {name} missing or empty at {crates_dir:?}");
        println!("{name:<14} {files:>6} {lines:>8}  {role}");
        total_files += files;
        total_lines += lines;
        if role.starts_with("TCB") {
            tcb_lines += lines;
        }
        listed.push(*name);
    }
    for entry in std::fs::read_dir(&crates_dir).expect("crates dir").flatten() {
        let name = entry.file_name().to_string_lossy().into_owned();
        if entry.path().is_dir() && !listed.contains(&name.as_str()) {
            panic!("crate `{name}` is not in the TCB breakdown — add it to CRATE_ROLES");
        }
    }
    println!("{:<14} {total_files:>6} {total_lines:>8}", "total");
    println!(
        "\nTCB (core+crypto+driver): {tcb_lines} lines; \
         external dependencies in the verify path: none"
    );
}
