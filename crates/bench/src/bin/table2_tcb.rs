//! Table 2: the HIX TCB breakdown — component × attack surface ×
//! protection mechanism. Each row is backed by an executable enforcement
//! check (the `hix-attacks` scenarios and the platform tests); this
//! binary prints the matrix and re-runs the quick checks.

use hix_attacks::run_all;

struct Row {
    component: &'static str,
    surface: &'static str,
    access_restriction: &'static str,
    encryption: &'static str,
    enforced_by: &'static str,
}

fn main() {
    let rows = [
        Row {
            component: "GPU Enclave",
            surface: "MemAcc.",
            access_restriction: "SGX EPC protection",
            encryption: "(MEE)",
            enforced_by: "machine::tests::enclave_build_and_epc_protection",
        },
        Row {
            component: "GECS & TGMR",
            surface: "MemAcc. & HIX instrs",
            access_restriction: "SGX EPC protection",
            encryption: "(MEE)",
            enforced_by: "hix state is processor-internal; only EGCREATE/EGADD mutate it",
        },
        Row {
            component: "GPU BIOS",
            surface: "MMIO",
            access_restriction: "MMU (TGMR) + measurement",
            encryption: "-",
            enforced_by: "gpu_enclave::tests::bios_mismatch_refused_and_gpu_returned",
        },
        Row {
            component: "GPU Registers",
            surface: "MMIO",
            access_restriction: "MMU (TGMR)",
            encryption: "-",
            enforced_by: "attacks::mmio_translation_attacks",
        },
        Row {
            component: "GPU Memory",
            surface: "MMIO & DMA",
            access_restriction: "MMU (TGMR)",
            encryption: "OCB-AES",
            enforced_by: "attacks::dma_redirection_attack",
        },
        Row {
            component: "PCIe Infrastructure",
            surface: "MMIO (config)",
            access_restriction: "PCIe root complex lockdown",
            encryption: "-",
            enforced_by: "attacks::pcie_routing_attacks",
        },
        Row {
            component: "User Enclave & HIX Library",
            surface: "MemAcc.",
            access_restriction: "SGX EPC protection",
            encryption: "(MEE)",
            enforced_by: "machine::tests::os_phys_reads_of_epc_see_no_plaintext",
        },
        Row {
            component: "Inter-Enclave Shared Memory",
            surface: "MemAcc. & DMA",
            access_restriction: "-",
            encryption: "OCB-AES",
            enforced_by: "attacks::shared_memory_snoop_and_tamper",
        },
    ];
    println!("== Table 2: HIX Trusted Computing Base breakdown ==\n");
    println!(
        "{:<28} {:<22} {:<28} {:<9} Enforced by",
        "Component", "Attack surface", "Access restriction", "Crypto"
    );
    for r in &rows {
        println!(
            "{:<28} {:<22} {:<28} {:<9} {}",
            r.component, r.surface, r.access_restriction, r.encryption, r.enforced_by
        );
    }
    println!("\nre-running the scenario suite to confirm every row is enforced…");
    let reports = run_all();
    for report in &reports {
        assert!(report.verdict.held(), "{} breached", report.name);
    }
    println!("{} scenarios: all defenses held", reports.len());
}
