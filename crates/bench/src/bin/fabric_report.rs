//! Fabric report: degraded-mode serving on the multi-GPU enclave
//! fabric. Sweeps {1, 2, 4} GPUs × fault profiles {none, shard-storm,
//! switch-correlated} × 3 seeds. Each machine cell launches one
//! `GpuEnclave` shard per GPU over a switched rig, plants per-tenant
//! patterns, storms exactly one shard until its watchdog escalates to a
//! shard-local secure reset, then proves containment: the reset's blast
//! radius outside the storming shard is zero, every tenant's readback
//! is byte-identical to its plant (and identical across all three fault
//! seeds), and at least one session cross-shard-migrates off the
//! resetting shard (fresh keys, replayed journal). The model half runs
//! the same placement over `run_fabric_scaled` and requires peer shards
//! to be bit-identical with and without a reset — zero peer-shard
//! stalls. Emits `BENCH_fabric.json` with a stable schema.
//!
//! Usage:
//!   fabric_report [OUT.json]            full sweep (4-GPU column included)
//!   fabric_report --smoke [OUT.json]    1- and 2-GPU columns only
//!   fabric_report --check FILE.json     parse and validate a report

use std::fmt::Write as _;

use hix_bench::json::{parse_json, Json};
use hix_core::fabric::{run_fabric_scaled, Fabric, FabricOptions};
use hix_core::multiuser::{SchedulerConfig, SessionSpec, TaskSpec};
use hix_driver::rig::{fabric_rig, RigOptions};
use hix_obs::fmt_ns;
use hix_sim::fault::{fabric_fault_plans, FabricProfile};
use hix_sim::{CostModel, Nanos, Payload};

/// Fault-tape seeds: outcomes must be byte-identical across all three.
const SEEDS: [u64; 3] = [7, 101, 4099];
/// GPUs per PCIe switch in every swept topology.
const FANOUT: usize = 2;
/// Tenants per shard (mixed traffic: each plants and reads back).
const TENANTS_PER_SHARD: usize = 2;
/// Storm ops before we declare the watchdog never escalated.
const STORM_CAP: usize = 400;
/// Payload planted (and later read back) by every tenant.
const PLANT_LEN: u64 = 4096;

fn fail(msg: &str) -> ! {
    eprintln!("fabric_report: FAILED: {msg}");
    std::process::exit(1);
}

/// Per-tenant plant, a function of the tenant index only — NOT the
/// fault seed — so served bytes must match across all swept seeds.
fn plant(tenant: usize) -> Vec<u8> {
    (0..PLANT_LEN as u32)
        .map(|i| (i.wrapping_mul(41).wrapping_add(tenant as u32 * 97) >> 3) as u8)
        .collect()
}

struct Cell {
    gpus: usize,
    profile: FabricProfile,
    seed: u64,
    sessions: usize,
    served_ok: usize,
    resets: u64,
    blast_radius: u64,
    migrations: u64,
    ops_to_reset: u64,
    /// Concatenated readbacks, compared across seeds for byte identity.
    served: Vec<u8>,
    snapshot: String,
}

fn run_scenario(gpus: usize, profile: FabricProfile, seed: u64) -> Cell {
    let (mut m, topo) = fabric_rig(RigOptions::default(), gpus, FANOUT);
    // Storm tenants are victims of injected faults, not abusers: keep
    // the eviction ladder out of the way so they recover repeatedly.
    let mut fabric = match Fabric::launch(
        &mut m,
        &topo,
        FabricOptions {
            evict_after: u32::MAX,
            ..FabricOptions::default()
        },
    ) {
        Ok(f) => f,
        Err(e) => fail(&format!("{gpus} GPUs: fabric launch: {e:?}")),
    };
    if !fabric.verify_all_paths(&m) {
        fail(&format!("{gpus} GPUs: a routing path failed verification"));
    }

    // Mixed traffic: TENANTS_PER_SHARD tenants per GPU, each planting
    // its own pattern. Placement spreads them evenly.
    let n_tenants = gpus * TENANTS_PER_SHARD;
    let mut tenants = Vec::new();
    for t in 0..n_tenants {
        let tag = [b't', t as u8, seed as u8, (seed >> 8) as u8];
        let (sid, mut session) = match fabric.connect(&mut m, 1 << 20, &tag) {
            Ok(x) => x,
            Err(e) => fail(&format!("tenant {t}: connect: {e:?}")),
        };
        let shard = fabric.shard_of(sid).expect("placed");
        let buf = session
            .malloc(&mut m, fabric.shard_mut(shard), PLANT_LEN)
            .unwrap_or_else(|e| fail(&format!("tenant {t}: malloc: {e:?}")));
        session
            .memcpy_htod(
                &mut m,
                fabric.shard_mut(shard),
                buf,
                &Payload::from_bytes(plant(t)),
            )
            .unwrap_or_else(|e| fail(&format!("tenant {t}: htod: {e:?}")));
        tenants.push((sid, session, buf));
    }
    if fabric.session_count() != n_tenants {
        fail(&format!(
            "{} sessions placed, expected {n_tenants}",
            fabric.session_count()
        ));
    }

    // Storm exactly one shard (the profile's designated shard) until
    // its watchdog escalates to a shard-local secure reset.
    let mut ops_to_reset = 0u64;
    let storm_shard = profile.storm_shard(gpus);
    if let Some(storm) = storm_shard {
        let switch_of: Vec<usize> = topo.gpus.iter().map(|g| g.switch).collect();
        let plans = fabric_fault_plans(seed, &switch_of, profile);
        for (i, plan) in plans.into_iter().enumerate() {
            m.set_device_fault_plan(topo.gpus[i].bdf, plan);
        }
        let driver = tenants
            .iter()
            .position(|(sid, _, _)| fabric.shard_of(*sid) == Some(storm))
            .expect("a tenant lives on the storm shard");
        let (_, ref mut session, buf) = tenants[driver];
        // Storm with *reads*: a dtoh rides the TDR-recovery loop but is
        // never journaled, so the replay the watchdog runs after every
        // kill stays short no matter how long the storm lasts.
        while m.trace().metrics().counter("watchdog.resets") == 0 {
            let back = session
                .memcpy_dtoh(&mut m, fabric.shard_mut(storm), buf, PLANT_LEN)
                .unwrap_or_else(|e| fail(&format!("storm dtoh: {e:?}")));
            if back.bytes() != &plant(driver)[..] {
                fail("storm readback diverged from the plant mid-storm");
            }
            ops_to_reset += 1;
            if ops_to_reset as usize >= STORM_CAP {
                fail(&format!(
                    "{gpus}/{}/{seed}: no secure reset after {STORM_CAP} storm ops",
                    profile.name()
                ));
            }
        }
        for g in &topo.gpus {
            m.set_device_fault_plan(g.bdf, None);
        }

        // Degraded-mode migration: while the storm shard digs out, move
        // a non-driving tenant off it to the least-loaded peer.
        if gpus >= 2 {
            let mover = tenants
                .iter()
                .position(|(sid, _, _)| {
                    fabric.shard_of(*sid) == Some(storm) && *sid != tenants[driver].0
                })
                .expect("a second tenant lives on the storm shard");
            let to = (0..gpus)
                .filter(|&s| s != storm)
                .min_by_key(|&s| (fabric.load(s), s))
                .expect("a peer shard exists");
            let (sid, ref mut session, _) = tenants[mover];
            fabric
                .migrate_session(&mut m, sid, session, to)
                .unwrap_or_else(|e| fail(&format!("cross-shard migration: {e:?}")));
            let resumed = session
                .resume(&mut m, fabric.shard_mut(to))
                .unwrap_or_else(|e| fail(&format!("resume after migration: {e:?}")));
            if !resumed {
                fail("migrated session did not re-establish");
            }
            if session.epoch() == 0 {
                fail("migrated session kept its pre-migration keys");
            }
        }
    }

    let resets = m.trace().metrics().counter("watchdog.resets");
    let blast_radius = storm_shard
        .map(|s| fabric.reset_blast_radius(&m, s))
        .unwrap_or(0);

    // Every tenant — peers, the storm driver, the migrant — reads its
    // plant back byte-identically.
    let mut served_ok = 0usize;
    let mut served = Vec::new();
    for (t, (sid, session, buf)) in tenants.iter_mut().enumerate() {
        let shard = fabric.shard_of(*sid).expect("still placed");
        let back = session
            .memcpy_dtoh(&mut m, fabric.shard_mut(shard), *buf, PLANT_LEN)
            .unwrap_or_else(|e| fail(&format!("tenant {t}: dtoh: {e:?}")));
        if back.bytes() == &plant(t)[..] {
            served_ok += 1;
        }
        served.extend_from_slice(back.bytes());
    }
    if fabric.session_count() != n_tenants {
        fail(&format!(
            "migration lost sessions: {} left of {n_tenants}",
            fabric.session_count()
        ));
    }
    if !fabric.verify_all_paths(&m) {
        fail(&format!("{gpus} GPUs: lockdown chain broken after the storm"));
    }

    Cell {
        gpus,
        profile,
        seed,
        sessions: n_tenants,
        served_ok,
        resets,
        blast_radius,
        migrations: m.trace().metrics().counter("fabric.migrations"),
        ops_to_reset,
        served,
        snapshot: m.trace().metrics().snapshot(),
    }
}

fn run_cell(gpus: usize, profile: FabricProfile, seed: u64) -> Cell {
    // Same-seed determinism: the whole scenario — storm, reset,
    // migration, readback — twice, bit-for-bit.
    let cell = run_scenario(gpus, profile, seed);
    let again = run_scenario(gpus, profile, seed);
    if cell.served != again.served
        || cell.resets != again.resets
        || cell.migrations != again.migrations
        || cell.ops_to_reset != again.ops_to_reset
    {
        fail(&format!(
            "{gpus}/{}/{seed}: rerun diverged",
            profile.name()
        ));
    }
    if cell.snapshot != again.snapshot {
        fail(&format!(
            "{gpus}/{}/{seed}: metrics snapshot not deterministic",
            profile.name()
        ));
    }
    cell
}

fn check_cells(cells: &[Cell]) {
    for c in cells {
        let tag = format!("{}/{}/{}", c.gpus, c.profile.name(), c.seed);
        // Containment: a shard-local secure reset never touches a peer.
        if c.blast_radius != 0 {
            fail(&format!("{tag}: reset blast radius {}", c.blast_radius));
        }
        // Byte-identical serving for every tenant.
        if c.served_ok != c.sessions {
            fail(&format!(
                "{tag}: only {}/{} tenants served byte-identical data",
                c.served_ok, c.sessions
            ));
        }
        if c.profile != FabricProfile::None {
            if c.resets == 0 {
                fail(&format!("{tag}: fault profile never caused a reset"));
            }
            // Every faulted multi-GPU run migrates at least one session
            // off the resetting shard.
            if c.gpus >= 2 && c.migrations == 0 {
                fail(&format!("{tag}: no cross-shard migration"));
            }
        }
    }
    // Byte identity ACROSS seeds: the fault tape may differ, the bytes
    // served to tenants may not.
    for c in cells {
        let anchor = cells
            .iter()
            .find(|b| b.gpus == c.gpus && b.profile == c.profile)
            .expect("cells nonempty");
        if c.served != anchor.served {
            fail(&format!(
                "{}/{}: seed {} served different bytes than seed {}",
                c.gpus,
                c.profile.name(),
                c.seed,
                anchor.seed
            ));
        }
    }
}

// ---- model half: zero peer-shard stalls, degraded-mode throughput ----

struct ModelCell {
    gpus: usize,
    clean_ns: u64,
    reset_ns: u64,
    peer_identical: bool,
}

/// The Figure 8/9 "bp-like" profile every modeled tenant runs.
fn task() -> TaskSpec {
    TaskSpec {
        name: "bp-like".into(),
        htod: 117 << 20,
        dtoh: 42 << 20,
        kernel_time: Nanos::from_millis(22),
        launches: 2,
    }
}

/// Modeled tenant pool, fixed across fabric sizes so the degraded-mode
/// table shows throughput scaling with shards added.
const MODEL_TENANTS: usize = 16;

fn run_model_cell(model: &CostModel, gpus: usize) -> ModelCell {
    let specs: Vec<SessionSpec> = (0..MODEL_TENANTS).map(|_| SessionSpec::new(task())).collect();
    let switch_of: Vec<usize> = (0..gpus).map(|i| i / FANOUT).collect();
    let cfg = SchedulerConfig::new(model);
    let clean = run_fabric_scaled(model, &specs, &switch_of, None, &cfg, None);
    let resetting = gpus - 1;
    let reset = run_fabric_scaled(model, &specs, &switch_of, Some(resetting), &cfg, None);
    // Zero peer-shard stalls: every non-resetting shard's outcome is
    // bit-identical whether or not a peer is mid-secure-reset.
    let peer_identical = clean.assignment == reset.assignment
        && (0..gpus)
            .filter(|&s| s != resetting)
            .all(|s| clean.per_shard[s] == reset.per_shard[s]);
    ModelCell {
        gpus,
        clean_ns: clean.makespan.as_nanos(),
        reset_ns: reset.makespan.as_nanos(),
        peer_identical,
    }
}

fn check_model(cells: &[ModelCell]) {
    for c in cells {
        if !c.peer_identical {
            fail(&format!(
                "model {} GPUs: a peer shard stalled during the reset",
                c.gpus
            ));
        }
        if c.reset_ns <= c.clean_ns {
            fail(&format!("model {} GPUs: the reset cost nothing", c.gpus));
        }
        let anchor = cells.iter().min_by_key(|b| b.gpus).expect("cells nonempty");
        if c.gpus > anchor.gpus {
            // Fixed tenant pool: adding shards must raise clean
            // throughput outright...
            if c.clean_ns >= anchor.clean_ns {
                fail(&format!(
                    "model {} GPUs: clean makespan {} not below the {}-GPU anchor {}",
                    c.gpus,
                    fmt_ns(c.clean_ns),
                    anchor.gpus,
                    fmt_ns(anchor.clean_ns)
                ));
            }
            // ...while the reset's absolute cost stays shard-local and
            // bounded: contained faults don't get more expensive as the
            // fabric grows.
            let delta = |m: &ModelCell| m.reset_ns - m.clean_ns;
            if delta(c) > 2 * delta(anchor) {
                fail(&format!(
                    "model {} GPUs: reset penalty {} outgrew the {}-GPU anchor {}",
                    c.gpus,
                    fmt_ns(delta(c)),
                    anchor.gpus,
                    fmt_ns(delta(anchor))
                ));
            }
        }
    }
}

// ---- JSON emit (stable key order) ----

fn emit_json(cells: &[Cell], model_cells: &[ModelCell]) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"bench\": \"fabric_report\",");
    let _ = writeln!(
        s,
        "  \"seeds\": [{}],",
        SEEDS.map(|x| x.to_string()).join(", ")
    );
    let _ = writeln!(s, "  \"switch_fanout\": {FANOUT},");
    s.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"gpus\": {}, \"profile\": \"{}\", \"seed\": {}, \"sessions\": {}, \"served_ok\": {}, \"resets\": {}, \"blast_radius\": {}, \"migrations\": {}, \"ops_to_reset\": {}}}",
            c.gpus,
            c.profile.name(),
            c.seed,
            c.sessions,
            c.served_ok,
            c.resets,
            c.blast_radius,
            c.migrations,
            c.ops_to_reset,
        );
        s.push_str(if i + 1 < cells.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ],\n");
    s.push_str("  \"model\": [\n");
    for (i, c) in model_cells.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"gpus\": {}, \"clean_makespan_ns\": {}, \"reset_makespan_ns\": {}, \"degraded_ratio\": {:.4}, \"peer_identical\": {}}}",
            c.gpus,
            c.clean_ns,
            c.reset_ns,
            c.reset_ns as f64 / c.clean_ns as f64,
            u8::from(c.peer_identical),
        );
        s.push_str(if i + 1 < model_cells.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ]\n}\n");
    s
}

// ---- JSON check (parser shared via hix_bench::json) ----

/// Required keys of each machine cell, in emission order.
const CELL_KEYS: [&str; 9] = [
    "gpus",
    "profile",
    "seed",
    "sessions",
    "served_ok",
    "resets",
    "blast_radius",
    "migrations",
    "ops_to_reset",
];

/// Required keys of each model cell, in emission order.
const MODEL_KEYS: [&str; 5] = [
    "gpus",
    "clean_makespan_ns",
    "reset_makespan_ns",
    "degraded_ratio",
    "peer_identical",
];

fn check_file(path: &str) {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => fail(&format!("cannot read {path}: {e}")),
    };
    let json = match parse_json(&text) {
        Ok(j) => j,
        Err(e) => fail(&format!("{path}: not valid JSON: {e}")),
    };
    let Json::Obj(top) = json else {
        fail(&format!("{path}: top level is not an object"));
    };
    let top_keys: Vec<&str> = top.iter().map(|(k, _)| k.as_str()).collect();
    if top_keys != ["bench", "seeds", "switch_fanout", "cells", "model"] {
        fail(&format!("{path}: unstable top-level keys {top_keys:?}"));
    }
    if top[0].1 != Json::Str("fabric_report".into()) {
        fail(&format!("{path}: wrong bench name"));
    }
    let Json::Arr(cells) = &top[3].1 else {
        fail(&format!("{path}: cells is not an array"));
    };
    if cells.is_empty() {
        fail(&format!("{path}: no cells"));
    }
    let num = |cell: &Json, key: &str| cell.get(key).and_then(Json::as_num).unwrap_or(-1.0);
    for (n, cell) in cells.iter().enumerate() {
        let Json::Obj(fields) = cell else {
            fail(&format!("{path}: cell {n} is not an object"));
        };
        let keys: Vec<&str> = fields.iter().map(|(k, _)| k.as_str()).collect();
        if keys != CELL_KEYS {
            fail(&format!("{path}: cell {n} has unstable keys {keys:?}"));
        }
        let Some(Json::Str(profile)) = cell.get("profile") else {
            fail(&format!("{path}: cell {n}: profile is not a string"));
        };
        let Some(profile) = FabricProfile::parse(profile) else {
            fail(&format!("{path}: cell {n}: unknown profile {profile:?}"));
        };
        for key in CELL_KEYS.iter().filter(|k| **k != "profile") {
            if num(cell, key) < 0.0 {
                fail(&format!("{path}: cell {n}: key {key} is not a number"));
            }
        }
        // The report's invariants hold in the committed file too.
        if num(cell, "blast_radius") != 0.0 {
            fail(&format!("{path}: cell {n}: nonzero reset blast radius"));
        }
        if num(cell, "served_ok") != num(cell, "sessions") {
            fail(&format!("{path}: cell {n}: tenants served non-identical data"));
        }
        if profile != FabricProfile::None {
            if num(cell, "resets") < 1.0 {
                fail(&format!("{path}: cell {n}: faulted run with no reset"));
            }
            if num(cell, "gpus") >= 2.0 && num(cell, "migrations") < 1.0 {
                fail(&format!("{path}: cell {n}: faulted run never migrated"));
            }
        }
    }
    let Json::Arr(model) = &top[4].1 else {
        fail(&format!("{path}: model is not an array"));
    };
    if model.is_empty() {
        fail(&format!("{path}: no model cells"));
    }
    for (n, cell) in model.iter().enumerate() {
        let Json::Obj(fields) = cell else {
            fail(&format!("{path}: model cell {n} is not an object"));
        };
        let keys: Vec<&str> = fields.iter().map(|(k, _)| k.as_str()).collect();
        if keys != MODEL_KEYS {
            fail(&format!("{path}: model cell {n} has unstable keys {keys:?}"));
        }
        if num(cell, "peer_identical") != 1.0 {
            fail(&format!("{path}: model cell {n}: peer shards stalled"));
        }
        if num(cell, "degraded_ratio") < 1.0 {
            fail(&format!("{path}: model cell {n}: degraded ratio below 1"));
        }
    }
    println!(
        "fabric_report: {path}: OK ({} cells, {} model cells, stable keys)",
        cells.len(),
        model.len()
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--check") {
        let Some(path) = args.get(1) else {
            fail("--check needs a file path");
        };
        check_file(path);
        return;
    }
    let smoke = args.first().map(String::as_str) == Some("--smoke");
    let out_path = args
        .get(usize::from(smoke))
        .cloned()
        .unwrap_or_else(|| "BENCH_fabric.json".into());

    let sizes: &[usize] = if smoke { &[1, 2] } else { &[1, 2, 4] };
    let profiles = [
        FabricProfile::None,
        FabricProfile::ShardStorm,
        FabricProfile::SwitchCorrelated,
    ];

    let mut cells = Vec::new();
    for &gpus in sizes {
        for profile in profiles {
            for seed in SEEDS {
                cells.push(run_cell(gpus, profile, seed));
            }
        }
    }
    check_cells(&cells);

    let model = CostModel::paper();
    let model_cells: Vec<ModelCell> =
        sizes.iter().map(|&g| run_model_cell(&model, g)).collect();
    check_model(&model_cells);

    println!("# Fabric sweep ({TENANTS_PER_SHARD} tenants/shard, fanout {FANOUT}, seeds {SEEDS:?})\n");
    println!("| gpus | profile | seed | resets | blast radius | migrations | served | ops to reset |");
    println!("|-----:|---------|-----:|-------:|-------------:|-----------:|-------:|-------------:|");
    for c in &cells {
        println!(
            "| {} | {} | {} | {} | {} | {} | {}/{} | {} |",
            c.gpus,
            c.profile.name(),
            c.seed,
            c.resets,
            c.blast_radius,
            c.migrations,
            c.served_ok,
            c.sessions,
            c.ops_to_reset,
        );
    }
    println!("\n# Degraded-mode model ({MODEL_TENANTS} bp-like tenants, one shard mid-secure-reset)\n");
    println!("| gpus | clean makespan | one shard resetting | throughput clean | degraded | peers bit-identical |");
    println!("|-----:|---------------:|--------------------:|-----------------:|---------:|--------------------:|");
    for c in &model_cells {
        let thru = |ns: u64| MODEL_TENANTS as f64 / (ns as f64 / 1e9);
        println!(
            "| {} | {} | {} | {:.2}/s | {:.2}/s | {} |",
            c.gpus,
            fmt_ns(c.clean_ns),
            fmt_ns(c.reset_ns),
            thru(c.clean_ns),
            thru(c.reset_ns),
            c.peer_identical,
        );
    }

    let json = emit_json(&cells, &model_cells);
    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        if !dir.as_os_str().is_empty() {
            let _ = std::fs::create_dir_all(dir);
        }
    }
    if let Err(e) = std::fs::write(&out_path, &json) {
        fail(&format!("cannot write {out_path}: {e}"));
    }
    println!("\nfabric_report: all self-checks passed; wrote {out_path}");
}
