//! Cloud-consolidation scenario (extension of Figures 8/9): all nine
//! Rodinia tenants share one GPU *simultaneously*, each with a different
//! workload — the mixed-tenancy case a cloud deployment actually sees.

use hix_core::multiuser::{run_multiuser_mixed, Mode, TaskSpec};
use hix_sim::CostModel;
use hix_workloads::rodinia_suite;

fn main() {
    let model = CostModel::paper();
    let specs: Vec<TaskSpec> = rodinia_suite()
        .iter()
        .map(|w| w.profile(&model).task_spec())
        .collect();
    println!("== consolidation: all 9 Rodinia tenants concurrently ==\n");
    let g = run_multiuser_mixed(&model, &specs, Mode::Gdev);
    let h = run_multiuser_mixed(&model, &specs, Mode::Hix);
    println!(
        "{:<6} {:>14} {:>14} {:>10}",
        "tenant", "Gdev finish", "HIX finish", "ratio"
    );
    for (i, spec) in specs.iter().enumerate() {
        println!(
            "{:<6} {:>14} {:>14} {:>9.2}x",
            spec.name,
            g.completions[i].to_string(),
            h.completions[i].to_string(),
            h.completions[i].as_nanos() as f64 / g.completions[i].as_nanos() as f64
        );
    }
    println!(
        "\nmakespan: Gdev {} | HIX {} ({:.2}x, {} ctx switches vs {})",
        g.makespan,
        h.makespan,
        h.makespan.as_nanos() as f64 / g.makespan.as_nanos() as f64,
        h.ctx_switches,
        g.ctx_switches
    );
    // Sequential-HIX reference: the paper notes parallel HIX still beats
    // serializing users.
    let serial: hix_sim::Nanos = specs
        .iter()
        .map(|s| {
            hix_core::multiuser::run_multiuser(&model, s, 1, Mode::Hix).makespan
        })
        .sum();
    println!(
        "serialized HIX would take {serial} — parallel sharing wins {:.2}x",
        serial.as_nanos() as f64 / h.makespan.as_nanos() as f64
    );
}
