//! §5.3.1 analysis: where HIX's overhead goes. The paper concludes "the
//! majority of performance overheads in HIX are from the authenticated
//! encryption overheads between the user enclave and GPU" — this harness
//! decomposes the modeled HIX−Gdev delta per workload and checks that
//! conclusion quantitatively.

use hix_sim::cost::ExecMode;
use hix_sim::{CostModel, Nanos};
use hix_workloads::rodinia_suite;

struct Decomposition {
    enclave_crypto: Nanos,
    gpu_crypto: Nanos,
    ipc: Nanos,
    init_delta_ms: f64, // signed: negative = HIX saves
}

fn decompose(model: &CostModel, htod: u64, dtoh: u64, launches: u64) -> Decomposition {
    let wire = |b: u64| {
        if b == 0 {
            Nanos::ZERO
        } else {
            model.pcie_transfer(b)
        }
    };
    // Extra time on the transfer path attributable to user-enclave
    // authenticated encryption (the pipelined path minus the raw wire).
    let enclave_crypto = (model.pipelined_transfer(htod, model.enclave_crypto_bw, model.pcie_bw, model.dma_setup)
        - wire(htod))
        + (model.pipelined_transfer(dtoh, model.pcie_bw, model.enclave_crypto_bw, Nanos::ZERO)
            + model.dma_setup
            - wire(dtoh));
    let chunks_dtoh = dtoh.div_ceil(model.pipeline_chunk).max(1);
    let gpu_crypto = model.gpu_crypt(htod)
        + model.gpu_crypt(dtoh)
        + model.kernel_launch * (1 + chunks_dtoh);
    let ipc = model.ipc_roundtrip * (launches + 6);
    let init_delta_ms = model.task_init(ExecMode::Hix).as_millis_f64()
        - model.task_init(ExecMode::Gdev).as_millis_f64();
    Decomposition {
        enclave_crypto,
        gpu_crypto,
        ipc,
        init_delta_ms,
    }
}

fn main() {
    let model = CostModel::paper();
    println!("== Section 5.3.1: decomposition of the HIX-Gdev delta (modeled) ==\n");
    println!(
        "{:<6} {:>14} {:>12} {:>8} {:>10} {:>12}",
        "bench", "enclave-AE", "in-GPU-AE", "IPC", "init", "AE share"
    );
    let mut ae_dominant = 0;
    let mut total = 0;
    for w in rodinia_suite() {
        let p = w.profile(&model);
        let d = decompose(&model, p.htod, p.dtoh, p.launches);
        let crypto_total = d.enclave_crypto + d.gpu_crypto;
        let gross =
            crypto_total.as_millis_f64() + d.ipc.as_millis_f64() + d.init_delta_ms.abs();
        let share = crypto_total.as_millis_f64() / gross * 100.0;
        if share > 50.0 {
            ae_dominant += 1;
        }
        total += 1;
        println!(
            "{:<6} {:>14} {:>12} {:>8} {:>+8.1}ms {:>11.1}%",
            p.abbrev,
            d.enclave_crypto.to_string(),
            d.gpu_crypto.to_string(),
            d.ipc.to_string(),
            d.init_delta_ms,
            share
        );
    }
    println!(
        "\nauthenticated encryption dominates the overhead for {ae_dominant}/{total} apps \
         (paper: \"the majority of performance overheads in HIX are from the \
         authenticated encryption\")"
    );
    assert!(
        ae_dominant * 2 > total,
        "AE must dominate for the majority of workloads"
    );
}
