//! Table 4: matrix sizes and the corresponding transfer/memory sizes.
//!
//! Regenerated from the workload definitions and asserted against the
//! paper's exact values.

use hix_workloads::matrix::{table4_row, PAPER_SIZES};

fn mb(bytes: u64) -> String {
    format!("{}MB", bytes >> 20)
}

fn main() {
    println!("== Table 4: matrix size vs data size ==\n");
    println!(
        "{:<14} {:>10} {:>10} {:>12}",
        "Matrix size", "HtoD", "DtoH", "Total mem"
    );
    let paper = [
        (2048, 32u64, 16u64, 48u64),
        (4096, 128, 64, 192),
        (8192, 512, 256, 768),
        (11264, 968, 484, 1452),
    ];
    for (&n, &(pn, ph, pd, pt)) in PAPER_SIZES.iter().zip(paper.iter()) {
        assert_eq!(n, pn);
        let (h, d, t) = table4_row(n);
        assert_eq!(h, ph << 20, "HtoD at {n}");
        assert_eq!(d, pd << 20, "DtoH at {n}");
        assert_eq!(t, pt << 20, "total at {n}");
        println!("{:<14} {:>10} {:>10} {:>12}", format!("{n}x{n}"), mb(h), mb(d), mb(t));
    }
    println!("\nall rows match the paper exactly");
}
