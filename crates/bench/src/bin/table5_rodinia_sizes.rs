//! Table 5: the Rodinia applications with their memcpy volumes and
//! problem sizes, regenerated from the workload profiles.

use hix_sim::CostModel;
use hix_workloads::rodinia_suite;

fn human(bytes: u64) -> String {
    if bytes >= 1 << 20 {
        format!("{:.2}MB", bytes as f64 / (1 << 20) as f64)
    } else {
        format!("{:.2}KB", bytes as f64 / 1024.0)
    }
}

fn main() {
    let model = CostModel::paper();
    println!("== Table 5: Rodinia benchmark applications ==\n");
    println!(
        "{:<28} {:>12} {:>12} {:>14} {:>9} {:>12}",
        "App", "HtoD", "DtoH", "problem size", "launches", "GPU compute"
    );
    // The paper's Table 5 values, for the assertion.
    let paper: &[(&str, f64, f64)] = &[
        ("BP", 117.0, 42.75),
        ("BFS", 45.78, 3.81),
        ("GS", 32.00, 32.00),
        ("HS", 8.00, 4.00),
        ("LUD", 16.00, 16.00),
        ("NW", 128.1, 64.03),
        ("NN", 334.1 / 1024.0, 167.05 / 1024.0),
        ("PF", 256.0, 32.0 / 1024.0),
        ("SRAD", 24.23, 24.19),
    ];
    for (w, &(abbrev, h_mb, d_mb)) in rodinia_suite().iter().zip(paper.iter()) {
        let p = w.profile(&model);
        assert_eq!(p.abbrev, abbrev);
        let h = (h_mb * (1u64 << 20) as f64).round() as u64;
        let d = (d_mb * (1u64 << 20) as f64).round() as u64;
        assert_eq!(p.htod, h, "{abbrev} HtoD");
        assert_eq!(p.dtoh, d, "{abbrev} DtoH");
        println!(
            "{:<28} {:>12} {:>12} {:>14} {:>9} {:>12}",
            format!("{} ({})", w.name(), p.abbrev),
            human(p.htod),
            human(p.dtoh),
            w.paper_size(),
            p.launches,
            p.kernel_time.to_string(),
        );
    }
    println!("\nall transfer volumes match the paper's Table 5 exactly");
}
