//! Pinned DMA-able host buffers.
//!
//! A `DmaBuffer` is contiguous in *bus* address space: physical frames
//! allocated by the OS, mapped into the owning process's address space
//! and into the IOMMU at consecutive bus pages. Both the baseline runtime
//! and HIX's inter-enclave shared memory use these.

use hix_pcie::addr::PhysAddr;
use hix_platform::mem::PAGE_SIZE;
use hix_platform::mmu::AccessFault;
use hix_platform::{Machine, ProcessId, VirtAddr};
use hix_sim::Payload;

/// A pinned, DMA-visible host buffer.
#[derive(Debug, Clone)]
pub struct DmaBuffer {
    pid: ProcessId,
    va: VirtAddr,
    bus: PhysAddr,
    len: u64,
}

impl DmaBuffer {
    /// Allocates a `len`-byte buffer for `pid`: physical frames, process
    /// mapping, and IOMMU entries at contiguous bus pages. VA and bus
    /// ranges are derived from the first frame's address, which the
    /// machine's bump allocator guarantees unique.
    pub fn alloc(machine: &mut Machine, pid: ProcessId, len: u64) -> Self {
        let pages = len.div_ceil(PAGE_SIZE).max(1);
        let frames = machine.alloc_frames(pages as usize);
        let first = frames[0];
        let va = VirtAddr::new(0x5000_0000_0000 + first.value() * 0x10);
        let bus = PhysAddr::new(0x10_0000_0000 + first.value());
        for (i, frame) in frames.iter().enumerate() {
            machine.os_map(pid, va.offset(i as u64 * PAGE_SIZE), *frame, true);
            machine
                .iommu_mut()
                .map(bus.offset(i as u64 * PAGE_SIZE), *frame);
        }
        DmaBuffer { pid, va, bus, len }
    }

    /// Maps the same buffer into another process (shared memory). The
    /// mapping is at the same virtual address for simplicity.
    pub fn share_with(&self, machine: &mut Machine, other: ProcessId) {
        let pages = self.len.div_ceil(PAGE_SIZE).max(1);
        for i in 0..pages {
            let va = self.va.offset(i * PAGE_SIZE);
            // Re-derive the frame from the owner's mapping via the bus
            // address (identity of construction).
            let frame = machine
                .iommu_mut()
                .translate(self.bus.offset(i * PAGE_SIZE))
                .expect("buffer is IOMMU-mapped");
            machine.os_map(other, va, frame, true);
        }
    }

    /// The buffer's bus address (what DMA descriptors use).
    pub fn bus(&self) -> PhysAddr {
        self.bus
    }

    /// The buffer's virtual address in the owning process.
    pub fn va(&self) -> VirtAddr {
        self.va
    }

    /// Capacity in bytes.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the buffer has zero capacity.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Writes `payload` into the buffer as process `pid` (no-op for
    /// synthetic payloads — the time plane charges elsewhere).
    ///
    /// # Errors
    ///
    /// Propagates [`AccessFault`]; panics if the payload exceeds capacity.
    pub fn write(
        &self,
        machine: &mut Machine,
        pid: ProcessId,
        offset: u64,
        payload: &Payload,
    ) -> Result<(), AccessFault> {
        assert!(offset + payload.len() <= self.len, "payload exceeds buffer");
        if payload.is_synthetic() {
            return Ok(());
        }
        machine.write(pid, self.va.offset(offset), payload.bytes())
    }

    /// Reads `len` bytes from the buffer as process `pid`.
    ///
    /// # Errors
    ///
    /// Propagates [`AccessFault`]; panics if the span exceeds capacity.
    pub fn read(
        &self,
        machine: &mut Machine,
        pid: ProcessId,
        offset: u64,
        len: u64,
    ) -> Result<Vec<u8>, AccessFault> {
        assert!(offset + len <= self.len, "read exceeds buffer");
        let mut buf = vec![0u8; len as usize];
        machine.read(pid, self.va.offset(offset), &mut buf)?;
        Ok(buf)
    }

    /// The process that allocated the buffer.
    pub fn owner(&self) -> ProcessId {
        self.pid
    }

    /// Releases the buffer: IOMMU entries removed, process mapping torn
    /// down, frames returned to the OS allocator.
    pub fn release(self, machine: &mut Machine) {
        let pages = self.len.div_ceil(PAGE_SIZE).max(1);
        let mut frames = Vec::with_capacity(pages as usize);
        for i in 0..pages {
            let bus = self.bus.offset(i * PAGE_SIZE);
            if let Some(frame) = machine.iommu_mut().translate(bus) {
                frames.push(frame);
            }
            machine.iommu_mut().unmap(bus);
            machine.os_unmap(self.pid, self.va.offset(i * PAGE_SIZE));
        }
        machine.free_frames(&frames);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rig::{standard_rig, RigOptions};

    #[test]
    fn alloc_write_read() {
        let mut m = standard_rig(RigOptions::default());
        let pid = m.create_process();
        let buf = DmaBuffer::alloc(&mut m, pid, 10_000);
        let payload = Payload::from_bytes((0..255u8).cycle().take(10_000).collect());
        buf.write(&mut m, pid, 0, &payload).unwrap();
        let back = buf.read(&mut m, pid, 0, 10_000).unwrap();
        assert_eq!(back, payload.bytes());
    }

    #[test]
    fn synthetic_write_is_noop() {
        let mut m = standard_rig(RigOptions::default());
        let pid = m.create_process();
        let buf = DmaBuffer::alloc(&mut m, pid, 4096);
        buf.write(&mut m, pid, 0, &Payload::synthetic(4096)).unwrap();
        let back = buf.read(&mut m, pid, 0, 16).unwrap();
        assert_eq!(back, vec![0u8; 16]);
    }

    #[test]
    fn shared_mapping_sees_same_bytes() {
        let mut m = standard_rig(RigOptions::default());
        let a = m.create_process();
        let b = m.create_process();
        let buf = DmaBuffer::alloc(&mut m, a, 4096);
        buf.share_with(&mut m, b);
        buf.write(&mut m, a, 10, &Payload::from_bytes(b"shared".to_vec()))
            .unwrap();
        let back = buf.read(&mut m, b, 10, 6).unwrap();
        assert_eq!(back, b"shared");
    }

    #[test]
    fn distinct_buffers_do_not_overlap() {
        let mut m = standard_rig(RigOptions::default());
        let pid = m.create_process();
        let b1 = DmaBuffer::alloc(&mut m, pid, 8192);
        let b2 = DmaBuffer::alloc(&mut m, pid, 8192);
        assert_ne!(b1.bus(), b2.bus());
        b1.write(&mut m, pid, 0, &Payload::from_bytes(vec![1; 8192])).unwrap();
        b2.write(&mut m, pid, 0, &Payload::from_bytes(vec![2; 8192])).unwrap();
        assert_eq!(b1.read(&mut m, pid, 0, 1).unwrap(), vec![1]);
        assert_eq!(b2.read(&mut m, pid, 0, 1).unwrap(), vec![2]);
    }
}
