//! # hix-driver — a Gdev-like user-level GPU driver
//!
//! The paper lifts the open-source Gdev CUDA runtime out of the OS and
//! into the GPU enclave. This crate is that driver: a register-level GPU
//! driver ([`GpuDriver`]) plus the unprotected baseline runtime
//! ([`gdev::Gdev`]) the paper compares against.
//!
//! The driver is deliberately *access-path agnostic*: it drives the GPU
//! purely through virtual-memory MMIO accesses issued as some process.
//! Run it from an ordinary process with OS-mapped MMIO and you get the
//! insecure Gdev baseline; run it from the GPU enclave over
//! `EGADD`-registered trusted MMIO and you get HIX (`hix-core` does
//! exactly that). The code is identical — which mirrors the paper's
//! "refactor the GPU device driver to work from within the CPU trusted
//! environment".
//!
//! [`rig`] builds the standard simulated machine (root port + GPU +
//! BIOS-programmed BARs) used by tests, examples, and benchmarks.

#![warn(missing_docs)]

pub mod buffer;
pub mod driver;
pub mod gdev;
pub mod rig;

pub use buffer::DmaBuffer;
pub use driver::{DriverError, GpuDriver};
pub use gdev::Gdev;
pub use rig::{standard_rig, RigOptions};
