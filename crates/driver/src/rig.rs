//! Standard simulated machine construction (the "testbed").
//!
//! Wires a [`Machine`] with one root port and the GPU, programs the BARs
//! the way the BIOS of Table 3's testbed would, and installs the built-in
//! crypto kernels plus any workload kernels the caller supplies.

use hix_gpu::device::{GpuConfig, GpuDevice};
use hix_gpu::GpuKernel;
use hix_pcie::addr::{Bdf, PhysAddr, PhysRange};
use hix_pcie::config::{offsets, ConfigSpace};
use hix_pcie::fabric::Provenance;
use hix_platform::{Machine, MachineConfig};

/// Physical address the BIOS assigns to BAR0 (registers, 16 MiB).
pub const BAR0_PA: PhysAddr = PhysAddr::new(0xc000_0000);
/// Physical address of BAR1 (VRAM aperture, 256 MiB).
pub const BAR1_PA: PhysAddr = PhysAddr::new(0xd000_0000);
/// The GPU's bus/device/function.
pub const GPU_BDF: Bdf = Bdf {
    bus: 1,
    device: 0,
    function: 0,
};
/// The root port's BDF.
pub const PORT_BDF: Bdf = Bdf {
    bus: 0,
    device: 1,
    function: 0,
};
/// The second GPU's BDF when [`RigOptions::second_gpu`] is set.
pub const GPU2_BDF: Bdf = Bdf {
    bus: 1,
    device: 1,
    function: 0,
};
/// BAR0 of the second GPU (registers only; no aperture is programmed).
pub const GPU2_BAR0_PA: PhysAddr = PhysAddr::new(0xc100_0000);

/// Options for [`standard_rig`].
#[derive(Default)]
pub struct RigOptions {
    /// Machine configuration (cost model, boot seed).
    pub machine: MachineConfig,
    /// GPU configuration (VRAM size, synthetic mode, seed).
    pub gpu: GpuConfig,
    /// Extra kernels to install (workloads).
    pub kernels: Vec<Box<dyn GpuKernel>>,
    /// Attach a second hardware GPU at [`GPU2_BDF`] (multi-GPU systems
    /// without peer-to-peer, §5.6).
    pub second_gpu: bool,
}


impl std::fmt::Debug for RigOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RigOptions")
            .field("gpu", &self.gpu)
            .field("extra_kernels", &self.kernels.len())
            .finish()
    }
}

/// Builds the standard machine: root port at 00:01.0 forwarding the MMIO
/// hole to bus 1, the GPU at 01:00.0 with BIOS-programmed BARs, crypto
/// kernels installed, and the IOMMU left in identity-passthrough (the
/// common boot configuration; attacks re-program it).
pub fn standard_rig(options: RigOptions) -> Machine {
    let gpu_config = options.gpu.clone();
    let mut machine = Machine::new(options.machine);

    // BIOS: root port with a window over the whole MMIO hole.
    let mut port_cfg = ConfigSpace::bridge(0x8086, 0x3420); // IOH3420, as in the paper's QEMU setup
    {
        let w = port_cfg.bridge_window_mut();
        w.primary_bus = 0;
        w.secondary_bus = 1;
        w.subordinate_bus = 1;
        w.window = Some(PhysRange::new(
            hix_platform::mem::layout::MMIO.base,
            hix_platform::mem::layout::MMIO.len,
        ));
    }
    machine
        .fabric_mut()
        .add_root_port(PORT_BDF, port_cfg)
        .expect("fresh fabric");

    // The GPU itself, enumerated at boot => Hardware provenance.
    let mut gpu = GpuDevice::new(
        gpu_config.clone(),
        machine.clock().clone(),
        machine.model().clone(),
        machine.trace().clone(),
    );
    hix_gpu::crypto_kernels::install(&mut gpu);
    for kernel in options.kernels {
        gpu.install_kernel(kernel);
    }
    machine
        .fabric_mut()
        .add_endpoint(GPU_BDF, Box::new(gpu), Provenance::Hardware)
        .expect("fresh slot");

    // BIOS programs the BARs and enables memory decode.
    machine
        .config_write(GPU_BDF, offsets::BAR0, BAR0_PA.value() as u32)
        .unwrap();
    machine
        .config_write(GPU_BDF, offsets::BAR0 + 4, BAR1_PA.value() as u32)
        .unwrap();
    machine.config_write(GPU_BDF, offsets::COMMAND, 0b10).unwrap();

    if options.second_gpu {
        // A second GPU behind the same root port, registers-only (no
        // BAR1 aperture programmed — the MMIO hole is sized for one
        // aperture; the DMA path is unaffected).
        let mut gpu2 = GpuDevice::new(
            GpuConfig {
                seed: gpu_config.seed.wrapping_add(1),
                ..gpu_config
            },
            machine.clock().clone(),
            machine.model().clone(),
            machine.trace().clone(),
        );
        hix_gpu::crypto_kernels::install(&mut gpu2);
        machine
            .fabric_mut()
            .add_endpoint(GPU2_BDF, Box::new(gpu2), Provenance::Hardware)
            .expect("fresh slot");
        machine
            .config_write(GPU2_BDF, offsets::BAR0, GPU2_BAR0_PA.value() as u32)
            .unwrap();
        machine.config_write(GPU2_BDF, offsets::COMMAND, 0b10).unwrap();
    }

    // Boot firmware leaves the IOMMU in passthrough.
    machine.iommu_mut().set_passthrough(true);
    machine
}

/// The GPU's BDF in the [`switched_rig`] topology.
pub const SWITCHED_GPU_BDF: Bdf = Bdf {
    bus: 3,
    device: 0,
    function: 0,
};

/// Builds a machine whose GPU sits *behind a PCIe switch*:
/// root port (00:01.0) → switch upstream (01:00.0) → switch downstream
/// (02:00.0) → GPU (03:00.0). Exercises the §4.3.2 requirement that
/// lockdown freezes every bridge between the root complex and the GPU.
pub fn switched_rig(options: RigOptions) -> Machine {
    let gpu_config = options.gpu.clone();
    let mut machine = Machine::new(options.machine);
    let window = Some(PhysRange::new(
        hix_platform::mem::layout::MMIO.base,
        hix_platform::mem::layout::MMIO.len,
    ));

    let mut port_cfg = ConfigSpace::bridge(0x8086, 0x3420);
    {
        let w = port_cfg.bridge_window_mut();
        w.secondary_bus = 1;
        w.subordinate_bus = 3;
        w.window = window;
    }
    machine
        .fabric_mut()
        .add_root_port(PORT_BDF, port_cfg)
        .expect("fresh fabric");

    let mut up_cfg = ConfigSpace::bridge(0x10b5, 0x8747); // PLX-style switch
    {
        let w = up_cfg.bridge_window_mut();
        w.primary_bus = 1;
        w.secondary_bus = 2;
        w.subordinate_bus = 3;
        w.window = window;
    }
    machine
        .fabric_mut()
        .add_switch_port(Bdf::new(1, 0, 0), up_cfg)
        .expect("upstream port");
    let mut down_cfg = ConfigSpace::bridge(0x10b5, 0x8747);
    {
        let w = down_cfg.bridge_window_mut();
        w.primary_bus = 2;
        w.secondary_bus = 3;
        w.subordinate_bus = 3;
        w.window = window;
    }
    machine
        .fabric_mut()
        .add_switch_port(Bdf::new(2, 0, 0), down_cfg)
        .expect("downstream port");

    let mut gpu = GpuDevice::new(
        gpu_config,
        machine.clock().clone(),
        machine.model().clone(),
        machine.trace().clone(),
    );
    hix_gpu::crypto_kernels::install(&mut gpu);
    for kernel in options.kernels {
        gpu.install_kernel(kernel);
    }
    machine
        .fabric_mut()
        .add_endpoint(SWITCHED_GPU_BDF, Box::new(gpu), Provenance::Hardware)
        .expect("fresh slot");
    machine
        .config_write(SWITCHED_GPU_BDF, offsets::BAR0, BAR0_PA.value() as u32)
        .unwrap();
    machine
        .config_write(SWITCHED_GPU_BDF, offsets::BAR0 + 4, BAR1_PA.value() as u32)
        .unwrap();
    machine
        .config_write(SWITCHED_GPU_BDF, offsets::COMMAND, 0b10)
        .unwrap();
    machine.iommu_mut().set_passthrough(true);
    machine
}

/// One GPU slot of a [`fabric_rig`] topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FabricGpu {
    /// The GPU's bus/device/function.
    pub bdf: Bdf,
    /// Physical address the BIOS programmed into BAR0.
    pub bar0: PhysAddr,
    /// Index of the switch this GPU sits behind.
    pub switch: usize,
    /// Seed of the GPU's (genuine) BIOS image — each GPU in the fabric
    /// carries its own, so per-GPU digest pinning is exercised.
    pub bios_seed: u64,
}

/// The wiring plan of a [`fabric_rig`] machine: where every GPU and
/// switch landed. Purely derived from `(n_gpus, switch_fanout)`, so two
/// rigs built with the same parameters agree bit-for-bit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FabricTopology {
    /// Per-GPU slots, in fabric order.
    pub gpus: Vec<FabricGpu>,
    /// Upstream-port BDFs of the switches, in switch order.
    pub switches: Vec<Bdf>,
}

impl FabricTopology {
    /// Computes the topology for `n_gpus` GPUs grouped `switch_fanout`
    /// to a switch, without building a machine. Bus numbers use a fixed
    /// stride per switch so a GPU's BDF depends only on its index and
    /// the fanout, never on the population of other groups.
    pub fn plan(n_gpus: usize, switch_fanout: usize, bios_seed_base: u64) -> FabricTopology {
        let n_gpus = n_gpus.max(1);
        let fanout = switch_fanout.max(1);
        let n_switches = n_gpus.div_ceil(fanout);
        let mut gpus = Vec::with_capacity(n_gpus);
        let mut switches = Vec::with_capacity(n_switches);
        for s in 0..n_switches {
            switches.push(Bdf::new(1, s as u8, 0));
        }
        for i in 0..n_gpus {
            let s = i / fanout;
            let j = i % fanout;
            // Per switch: one internal bus plus one bus per (potential)
            // GPU slot; bus 1 holds the upstream ports.
            let internal_bus = 2 + (s * (fanout + 1)) as u8;
            gpus.push(FabricGpu {
                bdf: Bdf::new(internal_bus + 1 + j as u8, 0, 0),
                bar0: PhysAddr::new(0xc000_0000 + (i as u64) * 0x0100_0000),
                switch: s,
                bios_seed: bios_seed_base.wrapping_add(i as u64),
            });
        }
        FabricTopology { gpus, switches }
    }
}

/// Builds an N-GPU machine for the enclave fabric: GPUs grouped
/// `switch_fanout` to a PLX-style switch, every switch behind one root
/// port. Each GPU carries its own BIOS (seed = base seed + index) and a
/// BIOS-programmed BAR0 at a distinct physical address (registers only,
/// like [`RigOptions::second_gpu`] — the MMIO hole is sized for one
/// VRAM aperture). Returns the machine plus the topology plan the
/// fabric layer verifies paths against. Only the built-in crypto
/// kernels are installed per GPU; workload kernels in
/// [`RigOptions::kernels`] are ignored here (they cannot be cloned per
/// device — fabric traffic drives the transfer/memset built-ins).
pub fn fabric_rig(
    options: RigOptions,
    n_gpus: usize,
    switch_fanout: usize,
) -> (Machine, FabricTopology) {
    let gpu_config = options.gpu.clone();
    let fanout = switch_fanout.max(1);
    let topology = FabricTopology::plan(n_gpus, fanout, gpu_config.seed);
    let mut machine = Machine::new(options.machine);
    let window = Some(PhysRange::new(
        hix_platform::mem::layout::MMIO.base,
        hix_platform::mem::layout::MMIO.len,
    ));
    let last_bus = 1 + (topology.switches.len() * (fanout + 1)) as u8;

    let mut port_cfg = ConfigSpace::bridge(0x8086, 0x3420);
    {
        let w = port_cfg.bridge_window_mut();
        w.secondary_bus = 1;
        w.subordinate_bus = last_bus;
        w.window = window;
    }
    machine
        .fabric_mut()
        .add_root_port(PORT_BDF, port_cfg)
        .expect("fresh fabric");

    for (s, up_bdf) in topology.switches.iter().enumerate() {
        let internal_bus = 2 + (s * (fanout + 1)) as u8;
        let mut up_cfg = ConfigSpace::bridge(0x10b5, 0x8747);
        {
            let w = up_cfg.bridge_window_mut();
            w.primary_bus = 1;
            w.secondary_bus = internal_bus;
            w.subordinate_bus = internal_bus + fanout as u8;
            w.window = window;
        }
        machine
            .fabric_mut()
            .add_switch_port(*up_bdf, up_cfg)
            .expect("upstream port");
        for j in 0..fanout {
            let gpu_bus = internal_bus + 1 + j as u8;
            let mut down_cfg = ConfigSpace::bridge(0x10b5, 0x8747);
            {
                let w = down_cfg.bridge_window_mut();
                w.primary_bus = internal_bus;
                w.secondary_bus = gpu_bus;
                w.subordinate_bus = gpu_bus;
                w.window = window;
            }
            machine
                .fabric_mut()
                .add_switch_port(Bdf::new(internal_bus, j as u8, 0), down_cfg)
                .expect("downstream port");
        }
    }

    for slot in &topology.gpus {
        let mut gpu = GpuDevice::new(
            GpuConfig {
                seed: slot.bios_seed,
                ..gpu_config.clone()
            },
            machine.clock().clone(),
            machine.model().clone(),
            machine.trace().clone(),
        );
        hix_gpu::crypto_kernels::install(&mut gpu);
        machine
            .fabric_mut()
            .add_endpoint(slot.bdf, Box::new(gpu), Provenance::Hardware)
            .expect("fresh slot");
        machine
            .config_write(slot.bdf, offsets::BAR0, slot.bar0.value() as u32)
            .unwrap();
        machine.config_write(slot.bdf, offsets::COMMAND, 0b10).unwrap();
    }

    machine.iommu_mut().set_passthrough(true);
    (machine, topology)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hix_gpu::regs::{bar0, GPU_MAGIC};
    use hix_pcie::config::BarIndex;

    #[test]
    fn rig_routes_gpu_mmio() {
        let machine = standard_rig(RigOptions::default());
        let (bdf, bar, off) = machine.fabric().route_mem(BAR0_PA).unwrap();
        assert_eq!(bdf, GPU_BDF);
        assert_eq!(bar, BarIndex(0));
        assert_eq!(off, 0);
        let (_, bar, _) = machine.fabric().route_mem(BAR1_PA).unwrap();
        assert_eq!(bar, BarIndex(1));
    }

    #[test]
    fn rig_gpu_answers_with_magic() {
        let mut machine = standard_rig(RigOptions::default());
        let mut buf = [0u8; 8];
        machine
            .fabric_mut()
            .mmio_read(BAR0_PA.offset(bar0::ID), &mut buf)
            .unwrap();
        assert_eq!(u64::from_le_bytes(buf), GPU_MAGIC);
    }

    #[test]
    fn fabric_rig_routes_every_gpu() {
        let (mut machine, topo) = fabric_rig(RigOptions::default(), 4, 2);
        assert_eq!(topo.gpus.len(), 4);
        assert_eq!(topo.switches.len(), 2);
        for (i, slot) in topo.gpus.iter().enumerate() {
            let (bdf, bar, off) = machine.fabric().route_mem(slot.bar0).unwrap();
            assert_eq!(bdf, slot.bdf, "gpu {i} BAR0 routes to its own slot");
            assert_eq!(bar, BarIndex(0));
            assert_eq!(off, 0);
            let mut buf = [0u8; 8];
            machine
                .fabric_mut()
                .mmio_read(slot.bar0.offset(bar0::ID), &mut buf)
                .unwrap();
            assert_eq!(u64::from_le_bytes(buf), GPU_MAGIC, "gpu {i} answers");
            assert_eq!(slot.switch, i / 2);
        }
        // Distinct BIOS per GPU: expansion ROMs must differ pairwise.
        let roms: Vec<Vec<u8>> = topo
            .gpus
            .iter()
            .map(|g| machine.fabric().read_expansion_rom(g.bdf, 0, 256).unwrap())
            .collect();
        for a in 0..roms.len() {
            for b in a + 1..roms.len() {
                assert_ne!(roms[a], roms[b], "gpu {a} and {b} share a BIOS");
            }
        }
        // The plan is pure: recomputing it matches what the rig built.
        assert_eq!(topo, FabricTopology::plan(4, 2, GpuConfig::default().seed));
    }

    #[test]
    fn rig_bios_measurable() {
        let machine = standard_rig(RigOptions::default());
        let rom = machine
            .fabric()
            .read_expansion_rom(GPU_BDF, 0, 8)
            .unwrap();
        assert_eq!(&rom, b"HIXBIOS1");
    }
}
