//! The register-level GPU driver (the refactored Gdev core).
//!
//! Every device interaction is a virtual-memory MMIO access issued as a
//! particular process — the driver never bypasses the platform's access
//! checks. If the process lacks rights to the GPU MMIO (because HIX
//! protects it), every method fails with
//! [`DriverError::Access`], which is precisely the paper's isolation
//! property showing up as an API error.

use std::collections::{BTreeMap, BTreeSet};

use hix_gpu::cmd::GpuCommand;
use hix_gpu::ctx::CtxId;
use hix_gpu::device::GpuDevice;
use hix_gpu::kernel::kernel_hash;
use hix_gpu::regs::{bar0, errcode, GPU_MAGIC};
use hix_gpu::vram::{DevAddr, GPU_PAGE_SIZE};
use hix_pcie::addr::Bdf;
use hix_pcie::config::BarIndex;
use hix_platform::mem::PAGE_SIZE;
use hix_platform::mmu::AccessFault;
use hix_platform::{Machine, ProcessId, VirtAddr};

use crate::buffer::DmaBuffer;

/// Driver-level errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DriverError {
    /// The MMIO access itself was denied (page fault / SGX / HIX). Under
    /// HIX this is what an attacker touching the GPU sees.
    Access(AccessFault),
    /// The device reported an error code (see [`hix_gpu::regs::errcode`]).
    Gpu(u32),
    /// The registers did not answer with the GPU magic.
    NotAGpu,
    /// Kernel name not loaded / not installed.
    UnknownKernel(String),
    /// Device memory exhausted.
    OutOfMemory,
    /// Free/copy referenced an unknown allocation.
    BadAllocation(DevAddr),
}

impl std::fmt::Display for DriverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DriverError::Access(e) => write!(f, "MMIO access denied: {e}"),
            DriverError::Gpu(code) => write!(f, "GPU error code {code}"),
            DriverError::NotAGpu => f.write_str("device did not identify as a GPU"),
            DriverError::UnknownKernel(name) => write!(f, "kernel {name:?} not loaded"),
            DriverError::OutOfMemory => f.write_str("out of device memory"),
            DriverError::BadAllocation(va) => write!(f, "no allocation at {va}"),
        }
    }
}

impl std::error::Error for DriverError {}

impl From<AccessFault> for DriverError {
    fn from(e: AccessFault) -> Self {
        DriverError::Access(e)
    }
}

#[derive(Debug, Clone)]
struct Allocation {
    /// Backing frame per page; `None` = not yet resident (managed
    /// allocations fault pages in on first touch).
    page_frames: Vec<Option<u64>>,
}

/// The driver instance (one per GPU owner: either the OS-side runtime or
/// the GPU enclave).
#[derive(Debug)]
pub struct GpuDriver {
    pid: ProcessId,
    bdf: Bdf,
    bar0_va: VirtAddr,
    bar1_va: Option<VirtAddr>,
    vram_size: u64,
    vram_next: u64,
    free_frames: Vec<u64>,
    next_ctx: u32,
    heaps: BTreeMap<u32, u64>,
    allocations: BTreeMap<(u32, u64), Allocation>,
    modules: BTreeSet<u64>,
}

impl GpuDriver {
    /// Attaches to the GPU whose BAR0 is mapped at `bar0_va` in `pid`'s
    /// address space (and optionally BAR1 at `bar1_va`). Verifies the
    /// device magic.
    ///
    /// # Errors
    ///
    /// Fails if MMIO is unreachable or the magic does not match.
    pub fn attach(
        machine: &mut Machine,
        pid: ProcessId,
        bdf: Bdf,
        bar0_va: VirtAddr,
        bar1_va: Option<VirtAddr>,
    ) -> Result<Self, DriverError> {
        let mut driver = GpuDriver {
            pid,
            bdf,
            bar0_va,
            bar1_va,
            vram_size: 0,
            vram_next: 0x10_0000, // first MiB reserved (firmware use)
            free_frames: Vec::new(),
            next_ctx: 1,
            heaps: BTreeMap::new(),
            allocations: BTreeMap::new(),
            modules: BTreeSet::new(),
        };
        let magic = driver.reg_read(machine, bar0::ID)?;
        if magic != GPU_MAGIC {
            return Err(DriverError::NotAGpu);
        }
        driver.vram_size = driver.reg_read(machine, bar0::VRAM_SIZE)?;
        Ok(driver)
    }

    /// The driving process.
    pub fn pid(&self) -> ProcessId {
        self.pid
    }

    /// The device location.
    pub fn bdf(&self) -> Bdf {
        self.bdf
    }

    /// Device memory capacity.
    pub fn vram_size(&self) -> u64 {
        self.vram_size
    }

    /// Reads a BAR0 register.
    ///
    /// # Errors
    ///
    /// Propagates MMIO faults.
    pub fn reg_read(&self, machine: &mut Machine, offset: u64) -> Result<u64, DriverError> {
        let mut buf = [0u8; 8];
        machine.read(self.pid, self.bar0_va.offset(offset), &mut buf)?;
        Ok(u64::from_le_bytes(buf))
    }

    /// Writes a BAR0 register.
    ///
    /// # Errors
    ///
    /// Propagates MMIO faults.
    pub fn reg_write(
        &self,
        machine: &mut Machine,
        offset: u64,
        value: u64,
    ) -> Result<(), DriverError> {
        machine.write(self.pid, self.bar0_va.offset(offset), &value.to_le_bytes())?;
        Ok(())
    }

    /// Submits one command through the staging window + doorbell.
    ///
    /// # Errors
    ///
    /// Propagates MMIO faults.
    pub fn submit(&self, machine: &mut Machine, cmd: &GpuCommand) -> Result<(), DriverError> {
        let bytes = cmd.encode();
        machine.write(self.pid, self.bar0_va.offset(bar0::CMD_WINDOW), &bytes)?;
        self.reg_write(machine, bar0::DOORBELL, bytes.len() as u64)
    }

    /// Waits for the GPU to drain its queue (Gdev synchronizes by MMIO
    /// polling) and surfaces any device error.
    ///
    /// # Errors
    ///
    /// Returns [`DriverError::Gpu`] with the device error code, after
    /// clearing it.
    pub fn sync(&self, machine: &mut Machine) -> Result<(), DriverError> {
        machine.run_device(self.bdf);
        // Poll once (models the final fence read).
        let _fence = self.reg_read(machine, bar0::FENCE)?;
        let error = self.reg_read(machine, bar0::ERROR)? as u32;
        if error != errcode::NONE {
            self.reg_write(machine, bar0::ERROR, 0)?;
            machine.trace().metrics().inc("driver.gpu_errors");
            return Err(DriverError::Gpu(error));
        }
        Ok(())
    }

    /// Whether the engines report busy (bit0 of STATUS): commands
    /// pending, a latched hang, or a lost completion. The TDR
    /// watchdog's hang signal — a clean [`GpuDriver::sync`] that leaves
    /// the device busy means no forward progress is being made.
    ///
    /// # Errors
    ///
    /// Propagates MMIO faults.
    pub fn status_busy(&self, machine: &mut Machine) -> Result<bool, DriverError> {
        Ok(self.reg_read(machine, bar0::STATUS)? & 1 != 0)
    }

    /// Rings the KILL doorbell for `ctx` (the watchdog's middle
    /// escalation rung): the device preempts the context, drops its
    /// queued work, and scrubs and destroys it. Host-side bookkeeping
    /// is forgotten in the same step. A wedged context ignores the
    /// doorbell — check [`GpuDriver::status_busy`] afterwards.
    ///
    /// # Errors
    ///
    /// Propagates MMIO faults.
    pub fn kill_ctx(&mut self, machine: &mut Machine, ctx: CtxId) -> Result<(), DriverError> {
        self.reg_write(machine, bar0::KILL, u64::from(ctx.0))?;
        self.forget_ctx(ctx);
        Ok(())
    }

    /// Drops host-side bookkeeping for a context whose device-side half
    /// is already gone (killed, or lost to a device reset), reclaiming
    /// its frames without submitting anything.
    pub fn forget_ctx(&mut self, ctx: CtxId) {
        let keys: Vec<(u32, u64)> = self
            .allocations
            .keys()
            .filter(|(c, _)| *c == ctx.0)
            .copied()
            .collect();
        for key in keys {
            let alloc = self.allocations.remove(&key).expect("key listed");
            self.free_frames
                .extend(alloc.page_frames.into_iter().flatten());
        }
        self.heaps.remove(&ctx.0);
    }

    /// Re-synchronizes the driver with a freshly reset device: every
    /// context, allocation, and loaded module is gone on the device, so
    /// the host-side mirrors are cleared too (the MMIO mappings survive
    /// a function-level reset). Context ids stay monotonic so post-reset
    /// contexts never alias pre-reset ones. Verifies the device still
    /// answers with the GPU magic.
    ///
    /// # Errors
    ///
    /// Fails if MMIO is unreachable or the magic does not match.
    pub fn reinit_after_reset(&mut self, machine: &mut Machine) -> Result<(), DriverError> {
        let magic = self.reg_read(machine, bar0::ID)?;
        if magic != GPU_MAGIC {
            return Err(DriverError::NotAGpu);
        }
        self.vram_next = 0x10_0000;
        self.free_frames.clear();
        self.heaps.clear();
        self.allocations.clear();
        self.modules.clear();
        Ok(())
    }

    /// Creates a GPU context.
    ///
    /// # Errors
    ///
    /// Propagates submission/sync failures.
    pub fn create_ctx(&mut self, machine: &mut Machine) -> Result<CtxId, DriverError> {
        let ctx = CtxId(self.next_ctx);
        self.next_ctx += 1;
        self.submit(machine, &GpuCommand::CreateCtx { ctx })?;
        self.sync(machine)?;
        self.heaps.insert(ctx.0, 0x100_0000); // dev VA heap base
        Ok(ctx)
    }

    /// Destroys a context (the device scrubs its memory).
    ///
    /// # Errors
    ///
    /// Propagates submission/sync failures.
    pub fn destroy_ctx(&mut self, machine: &mut Machine, ctx: CtxId) -> Result<(), DriverError> {
        // Reclaim the context's frames for future allocations.
        let keys: Vec<(u32, u64)> = self
            .allocations
            .keys()
            .filter(|(c, _)| *c == ctx.0)
            .copied()
            .collect();
        for key in keys {
            let alloc = self.allocations.remove(&key).expect("key listed");
            self.free_frames
                .extend(alloc.page_frames.into_iter().flatten());
        }
        self.heaps.remove(&ctx.0);
        self.submit(machine, &GpuCommand::DestroyCtx { ctx })?;
        self.sync(machine)
    }

    fn alloc_frame(&mut self) -> Result<u64, DriverError> {
        if let Some(f) = self.free_frames.pop() {
            return Ok(f);
        }
        if self.vram_next + GPU_PAGE_SIZE > self.vram_size {
            return Err(DriverError::OutOfMemory);
        }
        let f = self.vram_next;
        self.vram_next += GPU_PAGE_SIZE;
        Ok(f)
    }

    /// Allocates `len` bytes of device memory in `ctx` (`cuMemAlloc`).
    ///
    /// # Errors
    ///
    /// Fails when VRAM is exhausted or submission fails.
    pub fn malloc(
        &mut self,
        machine: &mut Machine,
        ctx: CtxId,
        len: u64,
    ) -> Result<DevAddr, DriverError> {
        let pages = len.div_ceil(GPU_PAGE_SIZE).max(1);
        let heap = self.heaps.get_mut(&ctx.0).expect("context exists");
        let va = DevAddr(*heap);
        *heap += pages * GPU_PAGE_SIZE;
        let mut frames = Vec::with_capacity(pages as usize);
        for _ in 0..pages {
            frames.push(self.alloc_frame()?);
        }
        // Coalesce physically-consecutive frames into MapRange commands
        // (bump allocation makes one range the common case).
        let mut i = 0usize;
        while i < frames.len() {
            let start = i;
            while i + 1 < frames.len() && frames[i + 1] == frames[i] + GPU_PAGE_SIZE {
                i += 1;
            }
            let run = (i - start + 1) as u64;
            self.submit(
                machine,
                &GpuCommand::MapRange {
                    ctx,
                    va: va.offset(start as u64 * GPU_PAGE_SIZE),
                    pa: frames[start],
                    pages: run,
                },
            )?;
            i += 1;
        }
        self.sync(machine)?;
        self.allocations.insert(
            (ctx.0, va.value()),
            Allocation {
                page_frames: frames.into_iter().map(Some).collect(),
            },
        );
        Ok(va)
    }

    /// Allocates `len` bytes of *managed* device memory (the demand-paging
    /// extension the paper leaves as future work, §5.6): no VRAM is
    /// committed up front; the first GPU touch of each page raises a
    /// recoverable page fault that [`GpuDriver::handle_page_fault`]
    /// services. Drive faulting work with [`GpuDriver::sync_paged`].
    pub fn malloc_managed(
        &mut self,
        _machine: &mut Machine,
        ctx: CtxId,
        len: u64,
    ) -> Result<DevAddr, DriverError> {
        let pages = len.div_ceil(GPU_PAGE_SIZE).max(1);
        let heap = self.heaps.get_mut(&ctx.0).expect("context exists");
        let va = DevAddr(*heap);
        *heap += pages * GPU_PAGE_SIZE;
        self.allocations.insert(
            (ctx.0, va.value()),
            Allocation {
                page_frames: vec![None; pages as usize],
            },
        );
        Ok(va)
    }

    /// Services a pending recoverable page fault: reads the faulting
    /// address, commits zero-filled frames for every non-resident page of
    /// the managed allocation it belongs to, and clears the error.
    /// Returns `true` if a fault was handled.
    ///
    /// # Errors
    ///
    /// [`DriverError::BadAllocation`] if the faulting address is not a
    /// managed allocation (a genuine wild access).
    pub fn handle_page_fault(&mut self, machine: &mut Machine) -> Result<bool, DriverError> {
        let code = self.reg_read(machine, bar0::ERROR)? as u32;
        if code != errcode::PAGE_FAULT {
            return Ok(false);
        }
        let addr = DevAddr(self.reg_read(machine, bar0::FAULT_ADDR)?);
        let ctx = CtxId(self.reg_read(machine, bar0::FAULT_CTX)? as u32);
        machine.trace().metrics().inc("driver.page_faults");
        let key = self
            .allocations
            .range(..=(ctx.0, addr.value()))
            .next_back()
            .filter(|((c, base), a)| {
                *c == ctx.0
                    && addr.value() < base + a.page_frames.len() as u64 * GPU_PAGE_SIZE
            })
            .map(|(k, _)| *k)
            .ok_or(DriverError::BadAllocation(addr))?;
        // Commit every non-resident page of the allocation (pre-faulting
        // keeps retried commands idempotent; see the module tests).
        let pages: Vec<usize> = {
            let alloc = &self.allocations[&key];
            (0..alloc.page_frames.len())
                .filter(|&i| alloc.page_frames[i].is_none())
                .collect()
        };
        for page in pages {
            let frame = self.alloc_frame()?;
            self.allocations.get_mut(&key).expect("present").page_frames[page] = Some(frame);
            self.submit(
                machine,
                &GpuCommand::MapPage {
                    ctx,
                    va: DevAddr(key.1 + page as u64 * GPU_PAGE_SIZE),
                    pa: frame,
                },
            )?;
        }
        // Clear the fault and drain the mapping commands.
        self.reg_write(machine, bar0::ERROR, 0)?;
        machine.run_device(self.bdf);
        Ok(true)
    }

    /// Like [`GpuDriver::sync`], but transparently services recoverable
    /// page faults by committing managed pages and re-submitting `retry`
    /// (the faulting command) until it completes.
    ///
    /// # Errors
    ///
    /// Propagates non-recoverable device errors.
    pub fn sync_paged(
        &mut self,
        machine: &mut Machine,
        retry: &GpuCommand,
    ) -> Result<(), DriverError> {
        for _ in 0..4096 {
            match self.sync(machine) {
                Ok(()) => return Ok(()),
                Err(DriverError::Gpu(code)) if code == errcode::PAGE_FAULT => {
                    // sync() already cleared ERROR; FAULT_ADDR persists.
                    self.reg_write(machine, bar0::ERROR, errcode::PAGE_FAULT as u64)?;
                    self.handle_page_fault(machine)?;
                    self.submit(machine, retry)?;
                }
                Err(other) => return Err(other),
            }
        }
        Err(DriverError::Gpu(errcode::PAGE_FAULT))
    }

    /// Frees a device allocation (`cuMemFree`). When `scrub` is set the
    /// memory is zeroed first — the §4.5 requirement for the trusted
    /// runtime; the insecure baseline skips it (and leaks, as the GPU
    /// data-leak literature shows).
    ///
    /// # Errors
    ///
    /// Fails for unknown allocations or submission errors.
    pub fn free(
        &mut self,
        machine: &mut Machine,
        ctx: CtxId,
        va: DevAddr,
        scrub: bool,
    ) -> Result<(), DriverError> {
        let alloc = self
            .allocations
            .remove(&(ctx.0, va.value()))
            .ok_or(DriverError::BadAllocation(va))?;
        let pages = alloc.page_frames.len() as u64;
        if scrub {
            // Scrub only resident runs (managed holes are never dirty).
            for (i, frame) in alloc.page_frames.iter().enumerate() {
                if frame.is_some() {
                    self.submit(
                        machine,
                        &GpuCommand::Memset {
                            ctx,
                            va: va.offset(i as u64 * GPU_PAGE_SIZE),
                            len: GPU_PAGE_SIZE,
                            value: 0,
                        },
                    )?;
                }
            }
        }
        self.submit(machine, &GpuCommand::UnmapRange { ctx, va, pages })?;
        self.free_frames
            .extend(alloc.page_frames.into_iter().flatten());
        self.sync(machine)
    }

    /// Queues a device-side fill (`cuMemsetD8`).
    ///
    /// # Errors
    ///
    /// Propagates submission failures.
    pub fn memset(
        &self,
        machine: &mut Machine,
        ctx: CtxId,
        va: DevAddr,
        len: u64,
        value: u8,
    ) -> Result<(), DriverError> {
        self.submit(machine, &GpuCommand::Memset { ctx, va, len, value })
    }

    /// Queues a device-to-device copy (`cuMemcpyDtoD`).
    ///
    /// # Errors
    ///
    /// Propagates submission failures.
    pub fn copy_dtod(
        &self,
        machine: &mut Machine,
        ctx: CtxId,
        src: DevAddr,
        dst: DevAddr,
        len: u64,
    ) -> Result<(), DriverError> {
        self.submit(machine, &GpuCommand::CopyDtoD { ctx, src, dst, len })
    }

    /// Queues a host→device DMA from a pinned buffer (`cuMemcpyHtoD`).
    /// Does not synchronize — callers batch and [`GpuDriver::sync`].
    ///
    /// # Errors
    ///
    /// Propagates submission failures.
    pub fn dma_htod(
        &self,
        machine: &mut Machine,
        ctx: CtxId,
        dst: DevAddr,
        src: &DmaBuffer,
        offset: u64,
        len: u64,
    ) -> Result<(), DriverError> {
        let obs = machine.trace().obs().clone();
        let span = obs.enter(
            machine.clock().now().as_nanos(),
            "driver",
            "dma_htod",
            &[("bytes", len), ("stage", hix_sim::Stage::Dma.index())],
        );
        let result = self.submit(
            machine,
            &GpuCommand::DmaHtoD {
                ctx,
                bus: src.bus().offset(offset),
                va: dst,
                len,
            },
        );
        obs.exit(span, machine.clock().now().as_nanos());
        result
    }

    /// Queues a device→host DMA into a pinned buffer (`cuMemcpyDtoH`).
    ///
    /// # Errors
    ///
    /// Propagates submission failures.
    pub fn dma_dtoh(
        &self,
        machine: &mut Machine,
        ctx: CtxId,
        src: DevAddr,
        dst: &DmaBuffer,
        offset: u64,
        len: u64,
    ) -> Result<(), DriverError> {
        let obs = machine.trace().obs().clone();
        let span = obs.enter(
            machine.clock().now().as_nanos(),
            "driver",
            "dma_dtoh",
            &[("bytes", len), ("stage", hix_sim::Stage::Dma.index())],
        );
        let result = self.submit(
            machine,
            &GpuCommand::DmaDtoH {
                ctx,
                va: src,
                bus: dst.bus().offset(offset),
                len,
            },
        );
        obs.exit(span, machine.clock().now().as_nanos());
        result
    }

    /// "Loads a module": verifies the kernel binary exists on the device
    /// and charges the binary upload.
    ///
    /// # Errors
    ///
    /// Returns [`DriverError::UnknownKernel`] when not installed.
    pub fn load_module(&mut self, machine: &mut Machine, name: &str) -> Result<(), DriverError> {
        let hash = kernel_hash(name);
        let installed = machine
            .device_mut(self.bdf)
            .and_then(|d| d.as_any_mut().downcast_mut::<GpuDevice>())
            .is_some_and(|gpu| gpu.has_kernel(hash));
        if !installed {
            return Err(DriverError::UnknownKernel(name.to_string()));
        }
        // Model the cubin upload (64 KiB binary).
        let cost = machine.model().pcie_transfer(64 << 10);
        machine.clock().advance(cost);
        self.modules.insert(hash);
        Ok(())
    }

    /// Queues a kernel launch (`cuLaunchKernel`).
    ///
    /// # Errors
    ///
    /// Fails if the module was not loaded or submission fails.
    pub fn launch(
        &self,
        machine: &mut Machine,
        ctx: CtxId,
        name: &str,
        args: &[u64],
    ) -> Result<(), DriverError> {
        let hash = kernel_hash(name);
        if !self.modules.contains(&hash) {
            return Err(DriverError::UnknownKernel(name.to_string()));
        }
        self.submit(
            machine,
            &GpuCommand::Launch {
                ctx,
                kernel: hash,
                args: args.to_vec(),
            },
        )
    }

    /// Runs one GPU-side DH exponentiation step (§4.4.1). For non-final
    /// steps, returns the blinded public value from the response buffer.
    ///
    /// # Errors
    ///
    /// Propagates submission/sync failures.
    pub fn dh_exp(
        &self,
        machine: &mut Machine,
        ctx: CtxId,
        public: &[u8],
        finalize: bool,
    ) -> Result<Option<Vec<u8>>, DriverError> {
        self.submit(
            machine,
            &GpuCommand::DhExp {
                ctx,
                finalize,
                public: public.to_vec(),
            },
        )?;
        self.sync(machine)?;
        if finalize {
            return Ok(None);
        }
        let mut len_buf = [0u8; 2];
        machine.read(self.pid, self.bar0_va.offset(bar0::RESP), &mut len_buf)?;
        let n = u16::from_le_bytes(len_buf) as usize;
        let mut out = vec![0u8; n];
        machine.read(self.pid, self.bar0_va.offset(bar0::RESP + 2), &mut out)?;
        Ok(Some(out))
    }

    /// Copies bytes into device memory through the BAR1 aperture (the
    /// MMIO data path of §4.4.2, used for small transfers).
    ///
    /// # Errors
    ///
    /// Fails without a mapped BAR1, on unknown allocations, or on MMIO
    /// faults.
    pub fn mmio_htod(
        &self,
        machine: &mut Machine,
        ctx: CtxId,
        dst: DevAddr,
        data: &[u8],
    ) -> Result<(), DriverError> {
        let bar1 = self.bar1_va.ok_or(DriverError::BadAllocation(dst))?;
        let (base_va, alloc) = self
            .allocations
            .range(..=(ctx.0, dst.value()))
            .next_back()
            .filter(|((c, base), a)| {
                let span = a.page_frames.len() as u64 * GPU_PAGE_SIZE;
                *c == ctx.0 && dst.value() + data.len() as u64 <= base + span
            })
            .map(|((_, base), a)| (*base, a.clone()))
            .ok_or(DriverError::BadAllocation(dst))?;
        let mut written = 0usize;
        while written < data.len() {
            let cur = dst.value() + written as u64 - base_va;
            let page = cur / GPU_PAGE_SIZE;
            let po = cur % GPU_PAGE_SIZE;
            let take = ((GPU_PAGE_SIZE - po) as usize).min(data.len() - written);
            let frame = alloc.page_frames[page as usize]
                .ok_or(DriverError::BadAllocation(dst))?;
            self.reg_write(machine, bar0::APERTURE, frame)?;
            machine.write(
                self.pid,
                bar1.offset(po),
                &data[written..written + take],
            )?;
            written += take;
        }
        Ok(())
    }
}

/// Maps the GPU's BAR0 (first `pages` pages) into `pid` at a fixed VA via
/// plain OS page tables — the *unprotected* access path the baseline
/// uses. Returns the chosen VA.
pub fn os_map_bar0(machine: &mut Machine, pid: ProcessId, bdf: Bdf, pages: u64) -> VirtAddr {
    let base = machine
        .fabric()
        .device(bdf)
        .expect("device present")
        .config()
        .bar(BarIndex(0))
        .base();
    let va = VirtAddr::new(0x7f00_0000_0000);
    for i in 0..pages {
        machine.os_map(pid, va.offset(i * PAGE_SIZE), base.offset(i * PAGE_SIZE), true);
    }
    va
}

/// Maps the first `pages` pages of BAR1 (aperture window) into `pid`.
pub fn os_map_bar1(machine: &mut Machine, pid: ProcessId, bdf: Bdf, pages: u64) -> VirtAddr {
    let base = machine
        .fabric()
        .device(bdf)
        .expect("device present")
        .config()
        .bar(BarIndex(1))
        .base();
    let va = VirtAddr::new(0x7f10_0000_0000);
    for i in 0..pages {
        machine.os_map(pid, va.offset(i * PAGE_SIZE), base.offset(i * PAGE_SIZE), true);
    }
    va
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rig::{standard_rig, RigOptions, GPU_BDF};
    use hix_sim::Payload;

    fn setup() -> (Machine, ProcessId, GpuDriver) {
        let mut m = standard_rig(RigOptions::default());
        let pid = m.create_process();
        let bar0_va = os_map_bar0(&mut m, pid, GPU_BDF, 16);
        let bar1_va = os_map_bar1(&mut m, pid, GPU_BDF, 16);
        let driver = GpuDriver::attach(&mut m, pid, GPU_BDF, bar0_va, Some(bar1_va)).unwrap();
        (m, pid, driver)
    }

    #[test]
    fn attach_verifies_magic() {
        let (_, _, driver) = setup();
        assert_eq!(driver.vram_size(), 1536 << 20);
    }

    #[test]
    fn attach_fails_on_unmapped_mmio() {
        let mut m = standard_rig(RigOptions::default());
        let pid = m.create_process();
        let err = GpuDriver::attach(&mut m, pid, GPU_BDF, VirtAddr::new(0x1000), None);
        assert!(matches!(err, Err(DriverError::Access(_))));
    }

    #[test]
    fn malloc_memcpy_roundtrip_via_dma() {
        let (mut m, pid, mut driver) = setup();
        let ctx = driver.create_ctx(&mut m).unwrap();
        let dev = driver.malloc(&mut m, ctx, 10_000).unwrap();
        let data: Vec<u8> = (0..10_000u32).map(|i| (i * 7) as u8).collect();
        let hbuf = DmaBuffer::alloc(&mut m, pid, 10_000);
        hbuf.write(&mut m, pid, 0, &Payload::from_bytes(data.clone())).unwrap();
        driver.dma_htod(&mut m, ctx, dev, &hbuf, 0, 10_000).unwrap();
        driver.sync(&mut m).unwrap();
        let out = DmaBuffer::alloc(&mut m, pid, 10_000);
        driver.dma_dtoh(&mut m, ctx, dev, &out, 0, 10_000).unwrap();
        driver.sync(&mut m).unwrap();
        assert_eq!(out.read(&mut m, pid, 0, 10_000).unwrap(), data);
    }

    #[test]
    fn mmio_data_path_roundtrip() {
        let (mut m, pid, mut driver) = setup();
        let ctx = driver.create_ctx(&mut m).unwrap();
        let dev = driver.malloc(&mut m, ctx, 9000).unwrap();
        let data: Vec<u8> = (0..9000u32).map(|i| (i * 3) as u8).collect();
        driver.mmio_htod(&mut m, ctx, dev, &data).unwrap();
        driver.sync(&mut m).unwrap();
        let out = DmaBuffer::alloc(&mut m, pid, 9000);
        driver.dma_dtoh(&mut m, ctx, dev, &out, 0, 9000).unwrap();
        driver.sync(&mut m).unwrap();
        assert_eq!(out.read(&mut m, pid, 0, 9000).unwrap(), data);
    }

    #[test]
    fn free_with_scrub_zeroes_and_reuses_frames() {
        let (mut m, _pid, mut driver) = setup();
        let ctx = driver.create_ctx(&mut m).unwrap();
        let a = driver.malloc(&mut m, ctx, 4096).unwrap();
        driver.mmio_htod(&mut m, ctx, a, &[0xabu8; 4096]).unwrap();
        driver.sync(&mut m).unwrap();
        driver.free(&mut m, ctx, a, true).unwrap();
        // Next allocation reuses the frame; it must read back zero.
        let b = driver.malloc(&mut m, ctx, 4096).unwrap();
        let out = DmaBuffer::alloc(&mut m, driver.pid(), 4096);
        driver.dma_dtoh(&mut m, ctx, b, &out, 0, 4096).unwrap();
        driver.sync(&mut m).unwrap();
        assert_eq!(out.read(&mut m, driver.pid(), 0, 16).unwrap(), vec![0u8; 16]);
    }

    #[test]
    fn kill_ctx_recovers_a_hung_device() {
        use hix_sim::fault::{FaultConfig, FaultPlan};
        let (mut m, _pid, mut driver) = setup();
        let ctx = driver.create_ctx(&mut m).unwrap();
        let dev = driver.malloc(&mut m, ctx, 4096).unwrap();
        m.set_fault_plan(FaultPlan::new(
            1,
            FaultConfig { gpu_hang_pm: 1000, ..FaultConfig::none() },
        ));
        driver.copy_dtod(&mut m, ctx, dev, dev, 64).unwrap();
        driver.sync(&mut m).unwrap(); // no error code — just no progress
        assert!(driver.status_busy(&mut m).unwrap(), "hang leaves engines busy");
        m.clear_fault_plan();
        driver.kill_ctx(&mut m, ctx).unwrap();
        assert!(!driver.status_busy(&mut m).unwrap(), "kill unblocks the device");
        // The latched KILLED code surfaces exactly once at the next sync.
        assert_eq!(driver.sync(&mut m), Err(DriverError::Gpu(errcode::KILLED)));
        driver.sync(&mut m).unwrap();
    }

    #[test]
    fn reinit_after_reset_resyncs_bookkeeping() {
        let (mut m, _pid, mut driver) = setup();
        let ctx = driver.create_ctx(&mut m).unwrap();
        let _dev = driver.malloc(&mut m, ctx, 8192).unwrap();
        m.fabric_mut().reset_device(GPU_BDF);
        driver.reinit_after_reset(&mut m).unwrap();
        let ctx2 = driver.create_ctx(&mut m).unwrap();
        assert!(ctx2.0 > ctx.0, "context ids stay monotonic across reset");
        let dev2 = driver.malloc(&mut m, ctx2, 4096).unwrap();
        driver.memset(&mut m, ctx2, dev2, 4096, 7).unwrap();
        driver.sync(&mut m).unwrap();
    }

    #[test]
    fn free_without_scrub_leaks_stale_data() {
        // The insecure baseline behavior the leak literature documents.
        let (mut m, _pid, mut driver) = setup();
        let ctx = driver.create_ctx(&mut m).unwrap();
        let a = driver.malloc(&mut m, ctx, 4096).unwrap();
        driver.mmio_htod(&mut m, ctx, a, &[0xcdu8; 4096]).unwrap();
        driver.sync(&mut m).unwrap();
        driver.free(&mut m, ctx, a, false).unwrap();
        let b = driver.malloc(&mut m, ctx, 4096).unwrap();
        let out = DmaBuffer::alloc(&mut m, driver.pid(), 4096);
        driver.dma_dtoh(&mut m, ctx, b, &out, 0, 4096).unwrap();
        driver.sync(&mut m).unwrap();
        assert_eq!(out.read(&mut m, driver.pid(), 0, 4).unwrap(), vec![0xcd; 4]);
    }

    #[test]
    fn unknown_kernel_rejected_at_load_and_launch() {
        let (mut m, _pid, mut driver) = setup();
        let ctx = driver.create_ctx(&mut m).unwrap();
        assert!(matches!(
            driver.load_module(&mut m, "nope"),
            Err(DriverError::UnknownKernel(_))
        ));
        assert!(matches!(
            driver.launch(&mut m, ctx, "hix.ocb_decrypt", &[]),
            Err(DriverError::UnknownKernel(_)) // installed but not loaded
        ));
        driver.load_module(&mut m, "hix.ocb_decrypt").unwrap();
        driver.launch(&mut m, ctx, "hix.ocb_decrypt", &[0, 0, 0, 0]).unwrap();
        // No session key -> BAD_ARGS from the device.
        assert_eq!(
            driver.sync(&mut m),
            Err(DriverError::Gpu(errcode::BAD_ARGS))
        );
        // Error was cleared by sync; next sync is clean.
        driver.sync(&mut m).unwrap();
    }

    #[test]
    fn out_of_memory_detected() {
        let mut m = standard_rig(RigOptions {
            gpu: hix_gpu::device::GpuConfig {
                vram_size: 2 << 20,
                ..Default::default()
            },
            ..Default::default()
        });
        let pid = m.create_process();
        let bar0_va = os_map_bar0(&mut m, pid, GPU_BDF, 16);
        let mut driver = GpuDriver::attach(&mut m, pid, GPU_BDF, bar0_va, None).unwrap();
        let ctx = driver.create_ctx(&mut m).unwrap();
        assert!(matches!(
            driver.malloc(&mut m, ctx, 64 << 20),
            Err(DriverError::OutOfMemory)
        ));
    }
}
