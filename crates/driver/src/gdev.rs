//! The unprotected Gdev baseline runtime (the paper's comparison point).
//!
//! A user process links this runtime, which maps the GPU MMIO through
//! ordinary OS page tables and drives the device directly — fast, but
//! with zero protection from privileged software. Every figure in §5
//! compares HIX against this path.

use hix_gpu::ctx::CtxId;
use hix_gpu::device::GpuDevice;
use hix_gpu::vram::DevAddr;
use hix_pcie::addr::Bdf;
use hix_sim::cost::ExecMode;
use hix_sim::{EventKind, Payload};
use hix_platform::{Machine, ProcessId};

use crate::driver::{os_map_bar0, os_map_bar1, DriverError, GpuDriver};
use crate::buffer::DmaBuffer;

/// The insecure baseline runtime ("Gdev" in the figures).
#[derive(Debug)]
pub struct Gdev {
    driver: GpuDriver,
    ctx: CtxId,
    staging: Option<DmaBuffer>,
    synthetic: bool,
    pageable: bool,
}

impl Gdev {
    /// Opens the GPU for `pid`: charges the baseline per-task
    /// initialization (device/context setup through the OS driver path),
    /// maps the MMIO, attaches, and creates a context.
    ///
    /// # Errors
    ///
    /// Propagates [`DriverError`].
    pub fn open(machine: &mut Machine, pid: ProcessId, bdf: Bdf) -> Result<Self, DriverError> {
        let init = machine.model().task_init(ExecMode::Gdev);
        machine.clock().advance(init);
        machine
            .trace()
            .emit(machine.clock().now(), init, EventKind::Init, "gdev task init");
        let bar0_va = os_map_bar0(machine, pid, bdf, 16);
        let bar1_va = os_map_bar1(machine, pid, bdf, 16);
        let mut driver = GpuDriver::attach(machine, pid, bdf, bar0_va, Some(bar1_va))?;
        let synthetic = machine
            .device_mut(bdf)
            .and_then(|d| d.as_any_mut().downcast_mut::<GpuDevice>())
            .is_some_and(|gpu| gpu.is_synthetic());
        let ctx = driver.create_ctx(machine)?;
        Ok(Gdev {
            driver,
            ctx,
            staging: None,
            synthetic,
            pageable: false,
        })
    }

    /// Switches transfers to the pageable-copy path (the classic
    /// `cudaMemcpy` behavior of naive applications; Rodinia on Gdev uses
    /// the faster direct I/O, which is the default here).
    pub fn set_pageable(&mut self, pageable: bool) {
        self.pageable = pageable;
    }

    /// The GPU context id.
    pub fn ctx(&self) -> CtxId {
        self.ctx
    }

    /// Access to the underlying driver (diagnostics).
    pub fn driver(&self) -> &GpuDriver {
        &self.driver
    }

    /// Loads a kernel module by name.
    ///
    /// # Errors
    ///
    /// Propagates [`DriverError`].
    pub fn load_module(&mut self, machine: &mut Machine, name: &str) -> Result<(), DriverError> {
        self.driver.load_module(machine, name)
    }

    /// Allocates device memory.
    ///
    /// # Errors
    ///
    /// Propagates [`DriverError`].
    pub fn malloc(&mut self, machine: &mut Machine, len: u64) -> Result<DevAddr, DriverError> {
        self.driver.malloc(machine, self.ctx, len)
    }

    /// Frees device memory (no scrubbing — the insecure baseline).
    ///
    /// # Errors
    ///
    /// Propagates [`DriverError`].
    pub fn free(&mut self, machine: &mut Machine, va: DevAddr) -> Result<(), DriverError> {
        self.driver.free(machine, self.ctx, va, false)
    }

    fn staging(&mut self, machine: &mut Machine, len: u64) -> &DmaBuffer {
        let need_new = self.staging.as_ref().is_none_or(|b| b.len() < len);
        if need_new {
            if let Some(old) = self.staging.take() {
                old.release(machine);
            }
            self.staging = Some(DmaBuffer::alloc(machine, self.driver.pid(), len));
        }
        self.staging.as_ref().expect("just ensured")
    }

    /// `cuMemcpyHtoD`: plaintext copy through a pinned staging buffer and
    /// the DMA engine.
    ///
    /// # Errors
    ///
    /// Propagates [`DriverError`].
    pub fn memcpy_htod(
        &mut self,
        machine: &mut Machine,
        dst: DevAddr,
        payload: &Payload,
    ) -> Result<(), DriverError> {
        let len = payload.len();
        if len == 0 {
            return Ok(());
        }
        // Gdev's direct-I/O design DMAs straight from the (pinned,
        // reused) staging buffer; no extra host copy is charged. The
        // pageable path instead pays the staged-copy pipeline.
        let obs = machine.trace().obs().clone();
        let span = obs.enter(
            machine.clock().now().as_nanos(),
            "session",
            "memcpy_htod",
            &[("bytes", len)],
        );
        let start = machine.clock().now();
        let pid = self.driver.pid();
        let staging = self.staging(machine, len).clone();
        staging.write(machine, pid, 0, payload)?;
        self.driver.dma_htod(machine, self.ctx, dst, &staging, 0, len)?;
        self.driver.sync(machine)?;
        if self.pageable {
            let total = machine.model().pageable_transfer(len);
            machine.clock().advance_to(start + total);
        }
        obs.exit(span, machine.clock().now().as_nanos());
        Ok(())
    }

    /// `cuMemcpyDtoH`: plaintext copy back to the host.
    ///
    /// # Errors
    ///
    /// Propagates [`DriverError`].
    pub fn memcpy_dtoh(
        &mut self,
        machine: &mut Machine,
        src: DevAddr,
        len: u64,
    ) -> Result<Payload, DriverError> {
        if len == 0 {
            return Ok(Payload::from_bytes(Vec::new()));
        }
        let obs = machine.trace().obs().clone();
        let span = obs.enter(
            machine.clock().now().as_nanos(),
            "session",
            "memcpy_dtoh",
            &[("bytes", len)],
        );
        let start = machine.clock().now();
        let pid = self.driver.pid();
        let staging = self.staging(machine, len).clone();
        self.driver.dma_dtoh(machine, self.ctx, src, &staging, 0, len)?;
        self.driver.sync(machine)?;
        if self.pageable {
            let total = machine.model().pageable_transfer(len);
            machine.clock().advance_to(start + total);
        }
        obs.exit(span, machine.clock().now().as_nanos());
        if self.synthetic {
            return Ok(Payload::synthetic(len));
        }
        Ok(Payload::from_bytes(staging.read(machine, pid, 0, len)?))
    }

    /// `cuMemsetD8`: fills device memory.
    ///
    /// # Errors
    ///
    /// Propagates [`DriverError`].
    pub fn memset(
        &mut self,
        machine: &mut Machine,
        va: DevAddr,
        len: u64,
        value: u8,
    ) -> Result<(), DriverError> {
        self.driver.memset(machine, self.ctx, va, len, value)?;
        self.driver.sync(machine)
    }

    /// `cuMemcpyDtoD`: device-to-device copy.
    ///
    /// # Errors
    ///
    /// Propagates [`DriverError`].
    pub fn memcpy_dtod(
        &mut self,
        machine: &mut Machine,
        src: DevAddr,
        dst: DevAddr,
        len: u64,
    ) -> Result<(), DriverError> {
        self.driver.copy_dtod(machine, self.ctx, src, dst, len)?;
        self.driver.sync(machine)
    }

    /// Launches a kernel and synchronizes.
    ///
    /// # Errors
    ///
    /// Propagates [`DriverError`].
    pub fn launch(
        &mut self,
        machine: &mut Machine,
        name: &str,
        args: &[u64],
    ) -> Result<(), DriverError> {
        self.driver.launch(machine, self.ctx, name, args)?;
        self.driver.sync(machine)
    }

    /// Queues a kernel launch without synchronizing.
    ///
    /// # Errors
    ///
    /// Propagates [`DriverError`].
    pub fn launch_async(
        &mut self,
        machine: &mut Machine,
        name: &str,
        args: &[u64],
    ) -> Result<(), DriverError> {
        self.driver.launch(machine, self.ctx, name, args)
    }

    /// Waits for all queued work.
    ///
    /// # Errors
    ///
    /// Propagates [`DriverError`].
    pub fn sync(&mut self, machine: &mut Machine) -> Result<(), DriverError> {
        self.driver.sync(machine)
    }

    /// Tears down the context and releases host buffers.
    ///
    /// # Errors
    ///
    /// Propagates [`DriverError`].
    pub fn close(mut self, machine: &mut Machine) -> Result<(), DriverError> {
        if let Some(staging) = self.staging.take() {
            staging.release(machine);
        }
        self.driver.destroy_ctx(machine, self.ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rig::{standard_rig, RigOptions, GPU_BDF};
    use hix_gpu::kernel::{GpuKernel, KernelError, KernelExec};
    use hix_sim::{CostModel, Nanos};

    /// A toy kernel: adds 1 to `n` i32s at `ptr`.
    struct Inc;

    impl GpuKernel for Inc {
        fn name(&self) -> &str {
            "test.inc"
        }
        fn cost(&self, _model: &CostModel, args: &[u64]) -> Nanos {
            Nanos::from_nanos(args.get(1).copied().unwrap_or(0))
        }
        fn run(&self, exec: &mut KernelExec<'_>) -> Result<(), KernelError> {
            let ptr = DevAddr(exec.arg(0)?);
            let n = exec.arg(1)? as usize;
            let mut v = exec.read_i32s(ptr, n)?;
            for x in &mut v {
                *x += 1;
            }
            exec.write_i32s(ptr, &v)
        }
    }

    #[test]
    fn end_to_end_compute() {
        let mut m = standard_rig(RigOptions {
            kernels: vec![Box::new(Inc)],
            ..Default::default()
        });
        let pid = m.create_process();
        let mut gdev = Gdev::open(&mut m, pid, GPU_BDF).unwrap();
        gdev.load_module(&mut m, "test.inc").unwrap();
        let dev = gdev.malloc(&mut m, 4 * 100).unwrap();
        let input: Vec<u8> = (0..100i32).flat_map(|i| i.to_le_bytes()).collect();
        gdev.memcpy_htod(&mut m, dev, &Payload::from_bytes(input)).unwrap();
        gdev.launch(&mut m, "test.inc", &[dev.value(), 100]).unwrap();
        let out = gdev.memcpy_dtoh(&mut m, dev, 400).unwrap();
        let vals: Vec<i32> = out
            .bytes()
            .chunks_exact(4)
            .map(|c| i32::from_le_bytes(c.try_into().unwrap()))
            .collect();
        assert_eq!(vals, (1..=100).collect::<Vec<i32>>());
        gdev.close(&mut m).unwrap();
    }

    #[test]
    fn open_charges_task_init() {
        let mut m = standard_rig(RigOptions::default());
        let pid = m.create_process();
        let before = m.clock().now();
        let _gdev = Gdev::open(&mut m, pid, GPU_BDF).unwrap();
        assert!(m.clock().now() - before >= m.model().task_init_gdev);
    }

    #[test]
    fn staging_buffer_reused_and_released() {
        let mut m = standard_rig(RigOptions::default());
        let pid = m.create_process();
        let mut gdev = Gdev::open(&mut m, pid, GPU_BDF).unwrap();
        let dev = gdev.malloc(&mut m, 8192).unwrap();
        for _ in 0..3 {
            gdev.memcpy_htod(&mut m, dev, &Payload::from_bytes(vec![1u8; 8192]))
                .unwrap();
        }
        gdev.close(&mut m).unwrap();
    }

    #[test]
    fn pageable_mode_charges_the_staged_copy_pipeline() {
        let mut m = standard_rig(RigOptions::default());
        let pid = m.create_process();
        let mut fast = Gdev::open(&mut m, pid, GPU_BDF).unwrap();
        let dev = fast.malloc(&mut m, 8 << 20).unwrap();
        let t0 = m.clock().now();
        fast.memcpy_htod(&mut m, dev, &Payload::from_bytes(vec![1; 8 << 20])).unwrap();
        let direct = m.clock().now() - t0;
        fast.set_pageable(true);
        let t0 = m.clock().now();
        fast.memcpy_htod(&mut m, dev, &Payload::from_bytes(vec![1; 8 << 20])).unwrap();
        let pageable = m.clock().now() - t0;
        assert!(
            pageable > direct,
            "pageable ({pageable}) must cost more than direct I/O ({direct})"
        );
        assert_eq!(pageable, m.model().pageable_transfer(8 << 20));
    }

    #[test]
    fn memset_and_dtod_on_the_baseline() {
        let mut m = standard_rig(RigOptions::default());
        let pid = m.create_process();
        let mut gdev = Gdev::open(&mut m, pid, GPU_BDF).unwrap();
        let a = gdev.malloc(&mut m, 4096).unwrap();
        let b = gdev.malloc(&mut m, 4096).unwrap();
        gdev.memset(&mut m, a, 4096, 0x31).unwrap();
        gdev.memcpy_dtod(&mut m, a, b, 4096).unwrap();
        let out = gdev.memcpy_dtoh(&mut m, b, 4096).unwrap();
        assert!(out.bytes().iter().all(|&x| x == 0x31));
    }

    #[test]
    fn synthetic_payloads_flow_through() {
        let mut m = standard_rig(RigOptions {
            gpu: hix_gpu::device::GpuConfig {
                synthetic: true,
                ..Default::default()
            },
            ..Default::default()
        });
        let pid = m.create_process();
        let mut gdev = Gdev::open(&mut m, pid, GPU_BDF).unwrap();
        let dev = gdev.malloc(&mut m, 32 << 20).unwrap();
        gdev.memcpy_htod(&mut m, dev, &Payload::synthetic(32 << 20)).unwrap();
        let out = gdev.memcpy_dtoh(&mut m, dev, 16 << 20).unwrap();
        assert!(out.is_synthetic());
        assert_eq!(out.len(), 16 << 20);
    }
}
