//! Finite-field Diffie–Hellman key agreement (§4.4.1 of the paper).
//!
//! The paper's enclaves run local attestation and then a Diffie–Hellman
//! exchange (extended to three parties: user enclave, GPU enclave, GPU) to
//! establish OCB-AES session keys. Two groups are provided:
//!
//! * [`DhGroup::modp2048`] — RFC 3526 group 14, what a production build
//!   would use. Exponentiation with our schoolbook bignum takes seconds in
//!   debug builds, so tests exercise it behind `--release`/`--ignored`.
//! * [`DhGroup::sim`] — a 256-bit safe-prime group used by the simulator's
//!   handshakes. The security *protocol* is identical; only the parameter
//!   size differs (documented substitution, see DESIGN.md).

use crate::bignum::Uint;
use crate::drbg::HmacDrbg;
use crate::kdf;

/// A Diffie–Hellman group (prime modulus + generator).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DhGroup {
    prime: Uint,
    generator: Uint,
    /// Private-key length in bytes.
    priv_len: usize,
}

impl DhGroup {
    /// The 256-bit prime group the simulator uses by default.
    ///
    /// The modulus is the secp256k1 field prime `2^256 - 2^32 - 977`
    /// (a well-known prime), generator 2. Undersized for real deployments
    /// but fast enough that debug-build test suites can run a handshake
    /// per session; production code would use [`DhGroup::modp2048`].
    pub fn sim() -> Self {
        let prime = Uint::from_hex(
            "fffffffffffffffffffffffffffffffffffffffffffffffffffffffefffffc2f",
        );
        DhGroup {
            prime,
            generator: Uint::from_u64(2),
            priv_len: 32,
        }
    }

    /// RFC 3526 group 14 (2048-bit MODP), generator 2.
    pub fn modp2048() -> Self {
        let prime = Uint::from_hex(
            "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD1\
             29024E088A67CC74020BBEA63B139B22514A08798E3404DD\
             EF9519B3CD3A431B302B0A6DF25F14374FE1356D6D51C245\
             E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED\
             EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3D\
             C2007CB8A163BF0598DA48361C55D39A69163FA8FD24CF5F\
             83655D23DCA3AD961C62F356208552BB9ED529077096966D\
             670C354E4ABC9804F1746C08CA18217C32905E462E36CE3B\
             E39E772C180E86039B2783A2EC07A28FB5C55DF06F4C52C9\
             DE2BCBF6955817183995497CEA956AE515D2261898FA0510\
             15728E5A8AACAA68FFFFFFFFFFFFFFFF",
        );
        DhGroup {
            prime,
            generator: Uint::from_u64(2),
            priv_len: 32,
        }
    }

    /// The group's prime modulus.
    pub fn prime(&self) -> &Uint {
        &self.prime
    }

    /// Generates a keypair deterministically from the given DRBG.
    pub fn generate(&self, rng: &mut HmacDrbg) -> DhKeyPair {
        // Sample until 2 <= x < p-1 (overwhelmingly the first sample).
        loop {
            let x = Uint::from_be_bytes(&rng.bytes(self.priv_len)).rem(&self.prime);
            if x >= Uint::from_u64(2) {
                let public = self.generator.modpow(&x, &self.prime);
                return DhKeyPair {
                    private: x,
                    public: DhPublic(public),
                };
            }
        }
    }

    /// Computes the shared secret from our private key and a peer's public
    /// value.
    ///
    /// # Errors
    ///
    /// Returns [`DhError::InvalidPublic`] for degenerate peer values
    /// (0, 1, or p-1), which would let an attacker force a known secret.
    pub fn agree(&self, ours: &DhKeyPair, theirs: &DhPublic) -> Result<SharedSecret, DhError> {
        let mut p_minus_1 = self.prime.clone();
        let one = Uint::one();
        p_minus_1 = {
            // p - 1 via modadd trick is awkward; subtract directly.
            let bytes = p_minus_1.to_be_bytes();
            let mut u = Uint::from_be_bytes(&bytes);
            // Safe: prime > 1.
            u = sub_one(u);
            u
        };
        if theirs.0.is_zero() || theirs.0 == one || theirs.0 == p_minus_1 || theirs.0 >= self.prime
        {
            return Err(DhError::InvalidPublic);
        }
        let secret = theirs.0.modpow(&ours.private, &self.prime);
        Ok(SharedSecret(secret.to_be_bytes()))
    }
}

fn sub_one(u: Uint) -> Uint {
    // Helper: u - 1 for u >= 1 using byte arithmetic (keeps Uint's API
    // minimal).
    let mut bytes = u.to_be_bytes();
    for i in (0..bytes.len()).rev() {
        if bytes[i] > 0 {
            bytes[i] -= 1;
            break;
        }
        bytes[i] = 0xff;
    }
    Uint::from_be_bytes(&bytes)
}

/// Errors from key agreement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DhError {
    /// The peer's public value is degenerate or out of range.
    InvalidPublic,
}

impl std::fmt::Display for DhError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DhError::InvalidPublic => f.write_str("invalid peer public value"),
        }
    }
}

impl std::error::Error for DhError {}

/// A DH public value (safe to transmit over the untrusted channel).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DhPublic(Uint);

impl DhPublic {
    /// Serializes for transmission.
    pub fn to_be_bytes(&self) -> Vec<u8> {
        self.0.to_be_bytes()
    }

    /// Parses a transmitted public value.
    pub fn from_be_bytes(bytes: &[u8]) -> Self {
        DhPublic(Uint::from_be_bytes(bytes))
    }
}

/// A DH keypair. The private half never leaves the enclave that made it.
#[derive(Clone)]
pub struct DhKeyPair {
    private: Uint,
    /// The public half.
    pub public: DhPublic,
}

impl std::fmt::Debug for DhKeyPair {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "DhKeyPair(public: {:?}, private: <hidden>)", self.public)
    }
}

/// The raw shared secret; feed through [`SharedSecret::derive_key`] before
/// use.
#[derive(Clone, PartialEq, Eq)]
pub struct SharedSecret(Vec<u8>);

impl std::fmt::Debug for SharedSecret {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("SharedSecret(<hidden>)")
    }
}

impl SharedSecret {
    /// Derives a 16-byte OCB-AES session key bound to `info`.
    pub fn derive_key(&self, info: &[u8]) -> [u8; 16] {
        kdf::derive_aes128(b"hix-dh", &self.0, info)
    }

    /// Raw secret bytes (for the three-party composition).
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_party_agreement() {
        let g = DhGroup::sim();
        let mut rng_a = HmacDrbg::new(b"alice");
        let mut rng_b = HmacDrbg::new(b"bob");
        let a = g.generate(&mut rng_a);
        let b = g.generate(&mut rng_b);
        let s_ab = g.agree(&a, &b.public).unwrap();
        let s_ba = g.agree(&b, &a.public).unwrap();
        assert_eq!(s_ab.as_bytes(), s_ba.as_bytes());
        assert_eq!(s_ab.derive_key(b"c"), s_ba.derive_key(b"c"));
        assert_ne!(s_ab.derive_key(b"c"), s_ab.derive_key(b"d"));
    }

    #[test]
    fn different_peers_different_secrets() {
        let g = DhGroup::sim();
        let a = g.generate(&mut HmacDrbg::new(b"a"));
        let b = g.generate(&mut HmacDrbg::new(b"b"));
        let c = g.generate(&mut HmacDrbg::new(b"c"));
        let s_ab = g.agree(&a, &b.public).unwrap();
        let s_ac = g.agree(&a, &c.public).unwrap();
        assert_ne!(s_ab.as_bytes(), s_ac.as_bytes());
    }

    #[test]
    fn rejects_degenerate_public_values() {
        let g = DhGroup::sim();
        let a = g.generate(&mut HmacDrbg::new(b"a"));
        for bad in [
            DhPublic(Uint::zero()),
            DhPublic(Uint::one()),
            DhPublic(sub_one(g.prime().clone())),
            DhPublic(g.prime().clone()),
        ] {
            assert_eq!(g.agree(&a, &bad), Err(DhError::InvalidPublic));
        }
    }

    #[test]
    fn public_value_roundtrips_serialization() {
        let g = DhGroup::sim();
        let a = g.generate(&mut HmacDrbg::new(b"a"));
        let wire = a.public.to_be_bytes();
        assert_eq!(DhPublic::from_be_bytes(&wire), a.public);
    }

    #[test]
    fn debug_hides_secrets() {
        let g = DhGroup::sim();
        let a = g.generate(&mut HmacDrbg::new(b"a"));
        assert!(format!("{a:?}").contains("<hidden>"));
        let s = g
            .agree(&a, &g.generate(&mut HmacDrbg::new(b"b")).public)
            .unwrap();
        assert_eq!(format!("{s:?}"), "SharedSecret(<hidden>)");
    }

    #[test]
    #[ignore = "2048-bit modpow with the schoolbook bignum is slow in debug builds"]
    fn modp2048_agreement() {
        let g = DhGroup::modp2048();
        let a = g.generate(&mut HmacDrbg::new(b"a"));
        let b = g.generate(&mut HmacDrbg::new(b"b"));
        assert_eq!(
            g.agree(&a, &b.public).unwrap().as_bytes(),
            g.agree(&b, &a.public).unwrap().as_bytes()
        );
    }
}
