//! A deterministic HMAC-DRBG (simplified NIST SP 800-90A profile).
//!
//! The simulator must be fully reproducible, so all "randomness" (DH
//! private keys, nonces, workload data) flows from seeded DRBGs rather than
//! an OS entropy source.

use crate::hmac::hmac_sha256;

/// Deterministic random bit generator over HMAC-SHA-256.
///
/// ```
/// use hix_crypto::drbg::HmacDrbg;
/// let mut a = HmacDrbg::new(b"seed");
/// let mut b = HmacDrbg::new(b"seed");
/// assert_eq!(a.bytes(8), b.bytes(8));
/// ```
#[derive(Debug, Clone)]
pub struct HmacDrbg {
    k: [u8; 32],
    v: [u8; 32],
}

impl HmacDrbg {
    /// Creates a generator from seed material.
    pub fn new(seed: &[u8]) -> Self {
        let mut drbg = HmacDrbg {
            k: [0u8; 32],
            v: [1u8; 32],
        };
        drbg.reseed(seed);
        drbg
    }

    /// Mixes additional entropy into the state.
    pub fn reseed(&mut self, data: &[u8]) {
        // K = HMAC(K, V || 0x00 || data); V = HMAC(K, V)
        let mut buf = Vec::with_capacity(33 + data.len());
        buf.extend_from_slice(&self.v);
        buf.push(0x00);
        buf.extend_from_slice(data);
        self.k = hmac_sha256(&self.k, &buf);
        self.v = hmac_sha256(&self.k, &self.v);
        if !data.is_empty() {
            let mut buf = Vec::with_capacity(33 + data.len());
            buf.extend_from_slice(&self.v);
            buf.push(0x01);
            buf.extend_from_slice(data);
            self.k = hmac_sha256(&self.k, &buf);
            self.v = hmac_sha256(&self.k, &self.v);
        }
    }

    /// Generates `len` pseudorandom bytes.
    pub fn bytes(&mut self, len: usize) -> Vec<u8> {
        let mut out = Vec::with_capacity(len);
        while out.len() < len {
            self.v = hmac_sha256(&self.k, &self.v);
            let take = (len - out.len()).min(32);
            out.extend_from_slice(&self.v[..take]);
        }
        self.reseed(&[]);
        out
    }

    /// Generates a fixed-size array of pseudorandom bytes.
    pub fn array<const N: usize>(&mut self) -> [u8; N] {
        self.bytes(N).try_into().unwrap()
    }

    /// Generates a uniform `u64`.
    pub fn u64(&mut self) -> u64 {
        u64::from_le_bytes(self.array())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = HmacDrbg::new(b"hix");
        let mut b = HmacDrbg::new(b"hix");
        assert_eq!(a.bytes(100), b.bytes(100));
        assert_eq!(a.u64(), b.u64());
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = HmacDrbg::new(b"hix-1");
        let mut b = HmacDrbg::new(b"hix-2");
        assert_ne!(a.bytes(32), b.bytes(32));
    }

    #[test]
    fn successive_outputs_differ() {
        let mut a = HmacDrbg::new(b"hix");
        let x = a.bytes(32);
        let y = a.bytes(32);
        assert_ne!(x, y);
    }

    #[test]
    fn reseed_changes_stream() {
        let mut a = HmacDrbg::new(b"hix");
        let mut b = HmacDrbg::new(b"hix");
        b.reseed(b"more");
        assert_ne!(a.bytes(32), b.bytes(32));
    }

    #[test]
    fn output_looks_balanced() {
        // Cheap sanity check: bit balance within 5% on 64 KiB.
        let mut a = HmacDrbg::new(b"balance");
        let data = a.bytes(65536);
        let ones: u32 = data.iter().map(|b| b.count_ones()).sum();
        let total = 65536 * 8;
        let frac = ones as f64 / total as f64;
        assert!((frac - 0.5).abs() < 0.05, "bit fraction {frac}");
    }
}
