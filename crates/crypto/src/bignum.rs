//! Minimal arbitrary-precision unsigned integers for Diffie–Hellman.
//!
//! Only the operations modular exponentiation needs: comparison, addition,
//! subtraction, shift, and bitwise-defined modular multiplication. The
//! implementation favours obvious correctness over speed; the simulator's
//! default DH group is sized so handshakes stay fast in debug builds.

use std::cmp::Ordering;

/// An unsigned big integer, little-endian `u64` limbs, no leading zero
/// limbs (canonical form; zero is an empty limb vector).
///
/// ```
/// use hix_crypto::bignum::Uint;
/// let a = Uint::from_be_bytes(&[0x01, 0x00]); // 256
/// assert_eq!(a.to_be_bytes(), vec![0x01, 0x00]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default, Hash)]
pub struct Uint {
    limbs: Vec<u64>,
}

impl Uint {
    /// Zero.
    pub fn zero() -> Self {
        Uint { limbs: Vec::new() }
    }

    /// One.
    pub fn one() -> Self {
        Uint { limbs: vec![1] }
    }

    /// Constructs from a small value.
    pub fn from_u64(v: u64) -> Self {
        let mut u = Uint { limbs: vec![v] };
        u.normalize();
        u
    }

    /// Parses big-endian bytes.
    pub fn from_be_bytes(bytes: &[u8]) -> Self {
        let mut limbs = Vec::with_capacity(bytes.len().div_ceil(8));
        let mut iter = bytes.rchunks(8);
        for chunk in &mut iter {
            let mut limb = 0u64;
            for &b in chunk {
                limb = (limb << 8) | b as u64;
            }
            limbs.push(limb);
        }
        let mut u = Uint { limbs };
        u.normalize();
        u
    }

    /// Parses a hex string (whitespace allowed).
    ///
    /// # Panics
    ///
    /// Panics on non-hex characters.
    pub fn from_hex(s: &str) -> Self {
        let clean: String = s.chars().filter(|c| !c.is_whitespace()).collect();
        let clean = if clean.len() % 2 == 1 {
            format!("0{clean}")
        } else {
            clean
        };
        let bytes: Vec<u8> = (0..clean.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&clean[i..i + 2], 16).expect("invalid hex digit"))
            .collect();
        Uint::from_be_bytes(&bytes)
    }

    /// Serializes to minimal big-endian bytes (empty for zero).
    pub fn to_be_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.limbs.len() * 8);
        for limb in self.limbs.iter().rev() {
            out.extend_from_slice(&limb.to_be_bytes());
        }
        let first_nonzero = out.iter().position(|&b| b != 0).unwrap_or(out.len());
        out.split_off(first_nonzero)
    }

    /// Whether the value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// Number of significant bits.
    pub fn bits(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(top) => self.limbs.len() * 64 - top.leading_zeros() as usize,
        }
    }

    /// Returns bit `i` (little-endian indexing).
    pub fn bit(&self, i: usize) -> bool {
        let limb = i / 64;
        if limb >= self.limbs.len() {
            return false;
        }
        (self.limbs[limb] >> (i % 64)) & 1 == 1
    }

    fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    fn add_assign(&mut self, rhs: &Uint) {
        let n = self.limbs.len().max(rhs.limbs.len());
        self.limbs.resize(n, 0);
        let mut carry = 0u64;
        for i in 0..n {
            let r = *rhs.limbs.get(i).unwrap_or(&0);
            let (s1, c1) = self.limbs[i].overflowing_add(r);
            let (s2, c2) = s1.overflowing_add(carry);
            self.limbs[i] = s2;
            carry = (c1 as u64) + (c2 as u64);
        }
        if carry > 0 {
            self.limbs.push(carry);
        }
    }

    /// `self -= rhs`.
    ///
    /// # Panics
    ///
    /// Panics if `rhs > self`.
    fn sub_assign(&mut self, rhs: &Uint) {
        assert!(*self >= *rhs, "bignum subtraction underflow");
        let mut borrow = 0u64;
        for i in 0..self.limbs.len() {
            let r = *rhs.limbs.get(i).unwrap_or(&0);
            let (d1, b1) = self.limbs[i].overflowing_sub(r);
            let (d2, b2) = d1.overflowing_sub(borrow);
            self.limbs[i] = d2;
            borrow = (b1 as u64) + (b2 as u64);
        }
        debug_assert_eq!(borrow, 0);
        self.normalize();
    }

    fn shl1_assign(&mut self) {
        let mut carry = 0u64;
        for limb in &mut self.limbs {
            let new_carry = *limb >> 63;
            *limb = (*limb << 1) | carry;
            carry = new_carry;
        }
        if carry > 0 {
            self.limbs.push(carry);
        }
    }

    /// `(self + rhs) mod m`; requires `self < m` and `rhs < m`.
    pub fn modadd(&self, rhs: &Uint, m: &Uint) -> Uint {
        debug_assert!(self < m && rhs < m);
        let mut out = self.clone();
        out.add_assign(rhs);
        if out >= *m {
            out.sub_assign(m);
        }
        out
    }

    /// `(self * rhs) mod m` via left-to-right shift-and-add; requires
    /// `self < m`.
    pub fn modmul(&self, rhs: &Uint, m: &Uint) -> Uint {
        debug_assert!(self < m, "modmul requires reduced lhs");
        assert!(!m.is_zero(), "modulus must be nonzero");
        let mut acc = Uint::zero();
        for i in (0..rhs.bits()).rev() {
            acc.shl1_assign();
            if acc >= *m {
                acc.sub_assign(m);
            }
            if rhs.bit(i) {
                acc.add_assign(self);
                if acc >= *m {
                    acc.sub_assign(m);
                }
            }
        }
        acc
    }

    /// `self^exp mod m` by square-and-multiply.
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero.
    pub fn modpow(&self, exp: &Uint, m: &Uint) -> Uint {
        assert!(!m.is_zero(), "modulus must be nonzero");
        if *m == Uint::one() {
            return Uint::zero();
        }
        let base = self.rem(m);
        let mut acc = Uint::one();
        for i in (0..exp.bits()).rev() {
            acc = acc.modmul(&acc, m);
            if exp.bit(i) {
                acc = acc.modmul(&base, m);
            }
        }
        acc
    }

    /// `self mod m` by shift-subtract reduction.
    pub fn rem(&self, m: &Uint) -> Uint {
        assert!(!m.is_zero(), "modulus must be nonzero");
        if self < m {
            return self.clone();
        }
        let mut acc = Uint::zero();
        for i in (0..self.bits()).rev() {
            acc.shl1_assign();
            if self.bit(i) {
                acc.add_assign(&Uint::one());
            }
            if acc >= *m {
                acc.sub_assign(m);
            }
        }
        acc
    }
}

impl PartialOrd for Uint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Uint {
    fn cmp(&self, other: &Self) -> Ordering {
        if self.limbs.len() != other.limbs.len() {
            return self.limbs.len().cmp(&other.limbs.len());
        }
        for (a, b) in self.limbs.iter().rev().zip(other.limbs.iter().rev()) {
            match a.cmp(b) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_bytes() {
        let cases: [&[u8]; 4] = [&[], &[1], &[0xff; 9], &[1, 0, 0, 0, 0, 0, 0, 0, 0]];
        for bytes in cases {
            let u = Uint::from_be_bytes(bytes);
            let back = u.to_be_bytes();
            // canonical: strips leading zeros
            let want: Vec<u8> = bytes
                .iter()
                .copied()
                .skip_while(|&b| b == 0)
                .collect();
            assert_eq!(back, want);
        }
    }

    #[test]
    fn hex_parsing() {
        assert_eq!(Uint::from_hex("ff"), Uint::from_u64(255));
        assert_eq!(Uint::from_hex("1 00"), Uint::from_u64(256));
        assert_eq!(Uint::from_hex("f"), Uint::from_u64(15)); // odd length
    }

    #[test]
    fn comparison_and_bits() {
        let a = Uint::from_hex("ffffffffffffffffff"); // 72 bits
        let b = Uint::from_hex("1000000000000000000"); // 2^72
        assert!(a < b);
        assert_eq!(a.bits(), 72);
        assert!(a.bit(0) && a.bit(71) && !a.bit(72));
        assert_eq!(Uint::zero().bits(), 0);
    }

    #[test]
    fn modadd_wraps() {
        let m = Uint::from_u64(100);
        let a = Uint::from_u64(70);
        let b = Uint::from_u64(50);
        assert_eq!(a.modadd(&b, &m), Uint::from_u64(20));
    }

    #[test]
    fn modmul_small() {
        let m = Uint::from_u64(97);
        let a = Uint::from_u64(53);
        let b = Uint::from_u64(88);
        assert_eq!(a.modmul(&b, &m), Uint::from_u64(53 * 88 % 97));
        assert_eq!(a.modmul(&Uint::zero(), &m), Uint::zero());
    }

    #[test]
    fn modpow_small() {
        let m = Uint::from_u64(1_000_000_007);
        let base = Uint::from_u64(2);
        let exp = Uint::from_u64(100);
        // 2^100 mod 1e9+7 = 976371285
        assert_eq!(base.modpow(&exp, &m), Uint::from_u64(976_371_285));
        assert_eq!(base.modpow(&Uint::zero(), &m), Uint::one());
        assert_eq!(Uint::zero().modpow(&Uint::from_u64(5), &m), Uint::zero());
    }

    #[test]
    fn modpow_multilimb_fermat() {
        // Fermat's little theorem on a 127-bit Mersenne prime:
        // a^(p-1) = 1 (mod p) for p = 2^127 - 1.
        let p = Uint::from_hex("7fffffffffffffffffffffffffffffff");
        let mut pm1 = p.clone();
        pm1.sub_assign(&Uint::one());
        let a = Uint::from_hex("123456789abcdef0fedcba9876543210");
        assert_eq!(a.modpow(&pm1, &p), Uint::one());
    }

    #[test]
    fn rem_matches_u128() {
        let a = Uint::from_hex("123456789abcdef0123456789abcdef");
        let m = Uint::from_u64(1_000_003);
        let a128 = 0x123456789abcdef0123456789abcdefu128;
        assert_eq!(a.rem(&m), Uint::from_u64((a128 % 1_000_003) as u64));
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let mut a = Uint::from_u64(1);
        a.sub_assign(&Uint::from_u64(2));
    }
}
