//! HKDF-style key derivation (RFC 5869, SHA-256), used to turn the
//! Diffie–Hellman shared secret into session keys for the user-enclave /
//! GPU-enclave / GPU channel (§4.4.1).

use crate::hmac::{hmac_sha256, HmacSha256};

/// Extracts a pseudorandom key from input keying material.
pub fn extract(salt: &[u8], ikm: &[u8]) -> [u8; 32] {
    hmac_sha256(salt, ikm)
}

/// Expands `prk` into `len` bytes of output keying material bound to
/// `info`.
///
/// # Panics
///
/// Panics if `len > 255 * 32` (HKDF limit).
pub fn expand(prk: &[u8; 32], info: &[u8], len: usize) -> Vec<u8> {
    assert!(len <= 255 * 32, "hkdf output too long");
    let mut out = Vec::with_capacity(len);
    let mut t: Vec<u8> = Vec::new();
    let mut counter = 1u8;
    while out.len() < len {
        let mut mac = HmacSha256::new(prk);
        mac.update(&t);
        mac.update(info);
        mac.update(&[counter]);
        t = mac.finish().to_vec();
        let take = (len - out.len()).min(32);
        out.extend_from_slice(&t[..take]);
        counter += 1;
    }
    out
}

/// One-shot extract-then-expand.
///
/// ```
/// use hix_crypto::kdf;
/// let key = kdf::derive(b"salt", b"shared-secret", b"hix session", 16);
/// assert_eq!(key.len(), 16);
/// ```
pub fn derive(salt: &[u8], ikm: &[u8], info: &[u8], len: usize) -> Vec<u8> {
    expand(&extract(salt, ikm), info, len)
}

/// Derives a 16-byte OCB-AES session key.
pub fn derive_aes128(salt: &[u8], ikm: &[u8], info: &[u8]) -> [u8; 16] {
    derive(salt, ikm, info, 16).try_into().unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    #[test]
    fn rfc5869_case1() {
        let ikm = [0x0b; 22];
        let salt = hex("000102030405060708090a0b0c");
        let info = hex("f0f1f2f3f4f5f6f7f8f9");
        let prk = extract(&salt, &ikm);
        assert_eq!(
            prk.to_vec(),
            hex("077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5")
        );
        let okm = expand(&prk, &info, 42);
        assert_eq!(
            okm,
            hex("3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf34007208d5b887185865")
        );
    }

    #[test]
    fn rfc5869_case3_empty_salt_info() {
        let ikm = [0x0b; 22];
        let okm = derive(&[], &ikm, &[], 42);
        assert_eq!(
            okm,
            hex("8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d9d201395faa4b61a96c8")
        );
    }

    #[test]
    fn different_info_different_keys() {
        let a = derive_aes128(b"s", b"secret", b"user->gpu");
        let b = derive_aes128(b"s", b"secret", b"gpu->user");
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "too long")]
    fn expand_rejects_huge_output() {
        let _ = expand(&[0u8; 32], b"", 255 * 32 + 1);
    }
}
