//! OCB authenticated encryption (RFC 7253) over AES-128.
//!
//! This is the algorithm HIX uses for every piece of data crossing an
//! untrusted medium: the inter-enclave shared memory, the DMA buffers, and
//! the GPU-side crypto kernels (§4.3.3, §5.2 — "OCB-AES-128 authenticated
//! encryption"). Verified against the RFC 7253 Appendix A vectors.
//!
//! The bulk paths are built for throughput: [`Ocb::seal_into`] /
//! [`Ocb::open_into`] are zero-allocation, walk the message
//! [`WIDE_BATCH`] blocks at a time (precomputing the offset ladder for
//! each pass and handing the whole batch to the wide AES core), and fuse
//! the checksum accumulation into the same pass. [`Ocb::seal`] /
//! [`Ocb::open`] are thin allocating wrappers over them.

use crate::aes::{Aes128, Block, BLOCK, WIDE_BATCH};
use crate::ct_eq;

/// Authentication tag length in bytes (TAGLEN = 128 bits).
pub const TAG_LEN: usize = 16;

/// Nonce length in bytes (96-bit nonces, the RFC-recommended size).
pub const NONCE_LEN: usize = 12;

/// An OCB-AES-128 key.
#[derive(Clone)]
pub struct Key([u8; 16]);

impl Key {
    /// Wraps raw key bytes.
    pub fn from_bytes(bytes: [u8; 16]) -> Self {
        Key(bytes)
    }

    /// Borrows the raw key bytes (for key-derivation plumbing only).
    pub fn as_bytes(&self) -> &[u8; 16] {
        &self.0
    }
}

impl std::fmt::Debug for Key {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Key(<hidden>)")
    }
}

/// A 96-bit OCB nonce. Nonces must never repeat under one key; HIX uses an
/// incrementing counter per direction (§5.5: "an incrementing nonce is
/// also used to ensure freshness ... and to prevent replay attacks").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Nonce([u8; NONCE_LEN]);

impl Nonce {
    /// Wraps raw nonce bytes.
    pub fn from_bytes(bytes: [u8; NONCE_LEN]) -> Self {
        Nonce(bytes)
    }

    /// Builds a nonce from a message counter (big-endian in the low bytes).
    pub fn from_counter(counter: u64) -> Self {
        let mut n = [0u8; NONCE_LEN];
        n[4..].copy_from_slice(&counter.to_be_bytes());
        Nonce(n)
    }

    /// Raw bytes.
    pub fn as_bytes(&self) -> &[u8; NONCE_LEN] {
        &self.0
    }
}

/// Decryption failure: the tag did not verify (data was tampered with, or
/// key/nonce/AAD mismatch).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TagMismatch;

impl std::fmt::Display for TagMismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("authentication tag mismatch")
    }
}

impl std::error::Error for TagMismatch {}

fn double(b: Block) -> Block {
    let mut out = [0u8; BLOCK];
    let mut carry = 0u8;
    for i in (0..BLOCK).rev() {
        out[i] = (b[i] << 1) | carry;
        carry = b[i] >> 7;
    }
    if carry == 1 {
        out[BLOCK - 1] ^= 0x87;
    }
    out
}

fn xor(a: &Block, b: &Block) -> Block {
    let mut out = *a;
    for (o, x) in out.iter_mut().zip(b) {
        *o ^= x;
    }
    out
}

/// A ready-to-use OCB context (expanded key + L table cache).
///
/// ```
/// use hix_crypto::ocb::{Ocb, Key, Nonce};
/// let ocb = Ocb::new(&Key::from_bytes([0; 16]));
/// let ct = ocb.seal(&Nonce::from_counter(7), b"aad", b"data");
/// assert_eq!(ocb.open(&Nonce::from_counter(7), b"aad", &ct).unwrap(), b"data");
/// assert!(ocb.open(&Nonce::from_counter(8), b"aad", &ct).is_err());
/// ```
#[derive(Clone)]
pub struct Ocb {
    aes: Aes128,
    l_star: Block,
    l_dollar: Block,
    l: Vec<Block>, // L_0, L_1, ... grown on demand up to 64 entries
}

impl std::fmt::Debug for Ocb {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Ocb(<keyed context>)")
    }
}

impl Ocb {
    /// Builds the context, precomputing the L table.
    pub fn new(key: &Key) -> Self {
        let aes = Aes128::new(&key.0);
        let l_star = aes.encrypt_block([0u8; 16]);
        let l_dollar = double(l_star);
        let mut l = Vec::with_capacity(64);
        l.push(double(l_dollar));
        for i in 1..64 {
            let prev = l[i - 1];
            l.push(double(prev));
        }
        Ocb {
            aes,
            l_star,
            l_dollar,
            l,
        }
    }

    /// Returns a clone of this keyed context pinned to the portable AES
    /// backend (see [`Aes128::portable`]); the differential suite uses it
    /// to exercise the software wide path on AES-NI machines.
    pub fn portable(&self) -> Self {
        Ocb {
            aes: self.aes.portable(),
            l_star: self.l_star,
            l_dollar: self.l_dollar,
            l: self.l.clone(),
        }
    }

    /// The AES backend this context runs on (see [`Aes128::backend`]).
    pub fn backend(&self) -> &'static str {
        self.aes.backend()
    }

    fn initial_offset(&self, nonce: &Nonce) -> Block {
        // TAGLEN = 128 -> the 7-bit tag field is zero.
        let mut full = [0u8; 16];
        full[16 - NONCE_LEN - 1] = 0x01;
        full[16 - NONCE_LEN..].copy_from_slice(&nonce.0);
        let bottom = (full[15] & 0x3f) as usize;
        let mut masked = full;
        masked[15] &= 0xc0;
        let ktop = self.aes.encrypt_block(masked);
        let mut stretch = [0u8; 24];
        stretch[..16].copy_from_slice(&ktop);
        for i in 0..8 {
            stretch[16 + i] = ktop[i] ^ ktop[i + 1];
        }
        // Offset_0 = Stretch[1+bottom .. 128+bottom] (bit indices).
        let byte = bottom / 8;
        let bit = bottom % 8;
        let mut offset = [0u8; 16];
        for i in 0..16 {
            offset[i] = if bit == 0 {
                stretch[byte + i]
            } else {
                (stretch[byte + i] << bit) | (stretch[byte + i + 1] >> (8 - bit))
            };
        }
        offset
    }

    /// Advances the offset ladder across one wide pass: offsets for blocks
    /// `base+1 ..= base+k` (1-indexed as in the RFC), leaving `offset` at
    /// the last rung.
    #[inline]
    fn ladder(&self, offset: &mut Block, base: usize, k: usize, offs: &mut [Block; WIDE_BATCH]) {
        for (j, o) in offs.iter_mut().enumerate().take(k) {
            let i = (base + j) as u64 + 1;
            *offset = xor(offset, &self.l[i.trailing_zeros() as usize]);
            *o = *offset;
        }
    }

    fn hash_aad(&self, aad: &[u8]) -> Block {
        let mut sum = [0u8; 16];
        let mut offset = [0u8; 16];
        let full = aad.len() / BLOCK;
        let mut offs = [[0u8; 16]; WIDE_BATCH];
        let mut blocks = [[0u8; 16]; WIDE_BATCH];
        let mut done = 0;
        while done < full {
            let k = WIDE_BATCH.min(full - done);
            self.ladder(&mut offset, done, k, &mut offs);
            for j in 0..k {
                blocks[j].copy_from_slice(&aad[(done + j) * BLOCK..][..BLOCK]);
                blocks[j] = xor(&blocks[j], &offs[j]);
            }
            self.aes.encrypt_blocks(&mut blocks[..k]);
            for b in blocks.iter().take(k) {
                sum = xor(&sum, b);
            }
            done += k;
        }
        let rest = &aad[full * BLOCK..];
        if !rest.is_empty() {
            offset = xor(&offset, &self.l_star);
            let mut block = [0u8; 16];
            block[..rest.len()].copy_from_slice(rest);
            block[rest.len()] = 0x80;
            sum = xor(&sum, &self.aes.encrypt_block(xor(&block, &offset)));
        }
        sum
    }

    /// Encrypts `plaintext` bound to `aad`, returning `ciphertext || tag`.
    ///
    /// Allocating wrapper over [`Self::seal_into`].
    pub fn seal(&self, nonce: &Nonce, aad: &[u8], plaintext: &[u8]) -> Vec<u8> {
        let mut out = vec![0u8; plaintext.len() + TAG_LEN];
        self.seal_into(nonce, aad, plaintext, &mut out);
        out
    }

    /// Encrypts `plaintext` bound to `aad` into `out` without allocating.
    ///
    /// `out` must be exactly `plaintext.len() + TAG_LEN` bytes; it receives
    /// `ciphertext || tag`. The message is processed [`WIDE_BATCH`] blocks
    /// per pass — the offset ladder for the pass is precomputed, the batch
    /// goes through the wide AES core, and the plaintext checksum is
    /// accumulated in the same pass.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != plaintext.len() + TAG_LEN`.
    pub fn seal_into(&self, nonce: &Nonce, aad: &[u8], plaintext: &[u8], out: &mut [u8]) {
        assert_eq!(
            out.len(),
            plaintext.len() + TAG_LEN,
            "seal_into: out must hold ciphertext || tag"
        );
        let mut offset = self.initial_offset(nonce);
        let mut checksum = [0u8; 16];
        let full = plaintext.len() / BLOCK;
        let mut offs = [[0u8; 16]; WIDE_BATCH];
        let mut blocks = [[0u8; 16]; WIDE_BATCH];
        let mut done = 0;
        while done < full {
            let k = WIDE_BATCH.min(full - done);
            self.ladder(&mut offset, done, k, &mut offs);
            for j in 0..k {
                blocks[j].copy_from_slice(&plaintext[(done + j) * BLOCK..][..BLOCK]);
                checksum = xor(&checksum, &blocks[j]);
                blocks[j] = xor(&blocks[j], &offs[j]);
            }
            self.aes.encrypt_blocks(&mut blocks[..k]);
            for j in 0..k {
                out[(done + j) * BLOCK..][..BLOCK].copy_from_slice(&xor(&blocks[j], &offs[j]));
            }
            done += k;
        }
        let rest = &plaintext[full * BLOCK..];
        if !rest.is_empty() {
            offset = xor(&offset, &self.l_star);
            let pad = self.aes.encrypt_block(offset);
            for (i, (p, k)) in rest.iter().zip(&pad).enumerate() {
                out[full * BLOCK + i] = p ^ k;
            }
            let mut padded = [0u8; 16];
            padded[..rest.len()].copy_from_slice(rest);
            padded[rest.len()] = 0x80;
            checksum = xor(&checksum, &padded);
        }
        let tag_body = xor(&xor(&checksum, &offset), &self.l_dollar);
        let tag = xor(&self.aes.encrypt_block(tag_body), &self.hash_aad(aad));
        out[plaintext.len()..].copy_from_slice(&tag);
    }

    /// Decrypts `sealed` (`ciphertext || tag`) bound to `aad`.
    ///
    /// Allocating wrapper over [`Self::open_into`].
    ///
    /// # Errors
    ///
    /// Returns [`TagMismatch`] if the input is shorter than a tag or the
    /// tag fails to verify. No plaintext is released on failure.
    pub fn open(&self, nonce: &Nonce, aad: &[u8], sealed: &[u8]) -> Result<Vec<u8>, TagMismatch> {
        if sealed.len() < TAG_LEN {
            return Err(TagMismatch);
        }
        let mut out = vec![0u8; sealed.len() - TAG_LEN];
        self.open_into(nonce, aad, sealed, &mut out)?;
        Ok(out)
    }

    /// Decrypts `sealed` (`ciphertext || tag`) into `out` without
    /// allocating; the mirror of [`Self::seal_into`], running the wide
    /// decrypt path so open costs the same as seal.
    ///
    /// `out` must be exactly `sealed.len() - TAG_LEN` bytes. On tag
    /// mismatch `out` is zeroed before returning, so no plaintext is
    /// released on failure.
    ///
    /// # Errors
    ///
    /// Returns [`TagMismatch`] if the input is shorter than a tag or the
    /// tag fails to verify.
    ///
    /// # Panics
    ///
    /// Panics if `sealed` holds a tag but `out.len() != sealed.len() - TAG_LEN`.
    pub fn open_into(
        &self,
        nonce: &Nonce,
        aad: &[u8],
        sealed: &[u8],
        out: &mut [u8],
    ) -> Result<(), TagMismatch> {
        if sealed.len() < TAG_LEN {
            return Err(TagMismatch);
        }
        let (ciphertext, tag) = sealed.split_at(sealed.len() - TAG_LEN);
        assert_eq!(
            out.len(),
            ciphertext.len(),
            "open_into: out must hold the plaintext"
        );
        let mut offset = self.initial_offset(nonce);
        let mut checksum = [0u8; 16];
        let full = ciphertext.len() / BLOCK;
        let mut offs = [[0u8; 16]; WIDE_BATCH];
        let mut blocks = [[0u8; 16]; WIDE_BATCH];
        let mut done = 0;
        while done < full {
            let k = WIDE_BATCH.min(full - done);
            self.ladder(&mut offset, done, k, &mut offs);
            for j in 0..k {
                blocks[j].copy_from_slice(&ciphertext[(done + j) * BLOCK..][..BLOCK]);
                blocks[j] = xor(&blocks[j], &offs[j]);
            }
            self.aes.decrypt_blocks(&mut blocks[..k]);
            for j in 0..k {
                let p = xor(&blocks[j], &offs[j]);
                checksum = xor(&checksum, &p);
                out[(done + j) * BLOCK..][..BLOCK].copy_from_slice(&p);
            }
            done += k;
        }
        let rest = &ciphertext[full * BLOCK..];
        if !rest.is_empty() {
            offset = xor(&offset, &self.l_star);
            let pad = self.aes.encrypt_block(offset);
            let start = full * BLOCK;
            for (i, (c, k)) in rest.iter().zip(&pad).enumerate() {
                out[start + i] = c ^ k;
            }
            let mut padded = [0u8; 16];
            padded[..rest.len()].copy_from_slice(&out[start..]);
            padded[rest.len()] = 0x80;
            checksum = xor(&checksum, &padded);
        }
        let tag_body = xor(&xor(&checksum, &offset), &self.l_dollar);
        let expect = xor(&self.aes.encrypt_block(tag_body), &self.hash_aad(aad));
        if ct_eq(&expect, tag) {
            Ok(())
        } else {
            out.fill(0);
            Err(TagMismatch)
        }
    }
}

/// One-shot seal with a fresh context (prefer [`Ocb`] for bulk use).
pub fn seal(key: &Key, nonce: &Nonce, aad: &[u8], plaintext: &[u8]) -> Vec<u8> {
    Ocb::new(key).seal(nonce, aad, plaintext)
}

/// One-shot open with a fresh context.
///
/// # Errors
///
/// Returns [`TagMismatch`] when authentication fails.
pub fn open(
    key: &Key,
    nonce: &Nonce,
    aad: &[u8],
    sealed: &[u8],
) -> Result<Vec<u8>, TagMismatch> {
    Ocb::new(key).open(nonce, aad, sealed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    fn rfc_key() -> Key {
        Key::from_bytes(hex("000102030405060708090A0B0C0D0E0F").try_into().unwrap())
    }

    fn rfc_nonce(last: &str) -> Nonce {
        Nonce::from_bytes(
            hex(&format!("BBAA9988776655443322110{last}"))
                .try_into()
                .unwrap(),
        )
    }

    #[test]
    fn rfc7253_empty() {
        let c = seal(&rfc_key(), &rfc_nonce("0"), b"", b"");
        assert_eq!(c, hex("785407BFFFC8AD9EDCC5520AC9111EE6"));
    }

    #[test]
    fn rfc7253_one_block_each() {
        let a = hex("0001020304050607");
        let p = hex("0001020304050607");
        let c = seal(&rfc_key(), &rfc_nonce("1"), &a, &p);
        assert_eq!(c, hex("6820B3657B6F615A5725BDA0D3B4EB3A257C9AF1F8F03009"));
    }

    #[test]
    fn rfc7253_aad_only() {
        let a = hex("0001020304050607");
        let c = seal(&rfc_key(), &rfc_nonce("2"), &a, b"");
        assert_eq!(c, hex("81017F8203F081277152FADE694A0A00"));
    }

    #[test]
    fn rfc7253_plaintext_only() {
        let p = hex("0001020304050607");
        let c = seal(&rfc_key(), &rfc_nonce("3"), b"", &p);
        assert_eq!(c, hex("45DD69F8F5AAE72414054CD1F35D82760B2CD00D2F99BFA9"));
    }

    #[test]
    fn rfc7253_full_block() {
        let m = hex("000102030405060708090A0B0C0D0E0F");
        let c = seal(&rfc_key(), &rfc_nonce("4"), &m, &m);
        assert_eq!(
            c,
            hex("571D535B60B277188BE5147170A9A22C3AD7A4FF3835B8C5701C1CCEC8FC3358")
        );
    }

    #[test]
    fn rfc7253_24_bytes() {
        let m = hex("000102030405060708090A0B0C0D0E0F1011121314151617");
        let c = seal(&rfc_key(), &rfc_nonce("6"), &m, &m);
        assert_eq!(
            c,
            hex("5CE88EC2E0692706A915C00AEB8B23968467B2CFBB580496923A4C5285B1F9AE693442EC9CDFB030")
        );
    }

    #[test]
    fn rfc7253_40_bytes_partial_final_block() {
        let m = hex(
            "000102030405060708090A0B0C0D0E0F101112131415161718191A1B1C1D1E1F2021222324252627",
        );
        let c = seal(&rfc_key(), &rfc_nonce("F"), &m, &m);
        assert_eq!(
            c,
            hex("4412923493C57D5DE0D700F753CCE0D1D2D95060122E9F15A5DDBFC5787E50B5CC55EE507BCB084E240A353649432AC6C1BDA9ACBA93F56D")
        );
    }

    #[test]
    fn rfc7253_iterated_wide_test() {
        // RFC 7253 Appendix A iterated algorithm: exercises every message
        // length 0..=127 (multi-block, partial blocks, AAD-only, PT-only)
        // and yields a single published check value.
        let key = Key::from_bytes({
            let mut k = [0u8; 16];
            k[15] = 128; // num2str(TAGLEN, 8)
            k
        });
        let ocb = Ocb::new(&key);
        let nonce_of = |n: u32| {
            let mut b = [0u8; NONCE_LEN];
            b[8..].copy_from_slice(&n.to_be_bytes());
            Nonce::from_bytes(b)
        };
        let mut c = Vec::new();
        for i in 0u32..128 {
            let s = vec![0u8; i as usize];
            c.extend(ocb.seal(&nonce_of(3 * i + 1), &s, &s));
            c.extend(ocb.seal(&nonce_of(3 * i + 2), b"", &s));
            c.extend(ocb.seal(&nonce_of(3 * i + 3), &s, b""));
        }
        let out = ocb.seal(&nonce_of(385), &c, b"");
        assert_eq!(out, hex("67E944D23256C5E0B6C61FA22FDF1EA2"));
    }

    #[test]
    fn rfc7253_iterated_wide_test_portable_backend() {
        // Same iterated check value with the wide path pinned to the
        // portable table backend.
        let key = Key::from_bytes({
            let mut k = [0u8; 16];
            k[15] = 128;
            k
        });
        let ocb = Ocb::new(&key).portable();
        let nonce_of = |n: u32| {
            let mut b = [0u8; NONCE_LEN];
            b[8..].copy_from_slice(&n.to_be_bytes());
            Nonce::from_bytes(b)
        };
        let mut c = Vec::new();
        for i in 0u32..128 {
            let s = vec![0u8; i as usize];
            c.extend(ocb.seal(&nonce_of(3 * i + 1), &s, &s));
            c.extend(ocb.seal(&nonce_of(3 * i + 2), b"", &s));
            c.extend(ocb.seal(&nonce_of(3 * i + 3), &s, b""));
        }
        let out = ocb.seal(&nonce_of(385), &c, b"");
        assert_eq!(out, hex("67E944D23256C5E0B6C61FA22FDF1EA2"));
    }

    #[test]
    fn roundtrip_many_lengths() {
        let ocb = Ocb::new(&rfc_key());
        for len in [0usize, 1, 15, 16, 17, 31, 32, 33, 100, 127, 128, 129, 1000] {
            let p: Vec<u8> = (0..len as u32).map(|i| i as u8).collect();
            let n = Nonce::from_counter(len as u64);
            let sealed = ocb.seal(&n, b"hdr", &p);
            assert_eq!(sealed.len(), len + TAG_LEN);
            assert_eq!(ocb.open(&n, b"hdr", &sealed).unwrap(), p, "len {len}");
        }
    }

    #[test]
    fn seal_into_open_into_match_allocating_paths() {
        let ocb = Ocb::new(&rfc_key());
        for len in [0usize, 1, 15, 16, 17, 127, 128, 129, 1000] {
            let p: Vec<u8> = (0..len as u32).map(|i| (i * 7) as u8).collect();
            let n = Nonce::from_counter(1000 + len as u64);
            let sealed = ocb.seal(&n, b"hdr", &p);
            let mut buf = vec![0u8; len + TAG_LEN];
            ocb.seal_into(&n, b"hdr", &p, &mut buf);
            assert_eq!(buf, sealed, "len {len}");
            let mut plain = vec![0xffu8; len];
            ocb.open_into(&n, b"hdr", &buf, &mut plain).unwrap();
            assert_eq!(plain, p, "len {len}");
        }
    }

    #[test]
    fn open_into_zeroes_output_on_mismatch() {
        let ocb = Ocb::new(&rfc_key());
        let n = Nonce::from_counter(1);
        let mut sealed = ocb.seal(&n, b"a", &[0x5au8; 40]);
        sealed[3] ^= 1;
        let mut out = vec![0xffu8; 40];
        assert_eq!(ocb.open_into(&n, b"a", &sealed, &mut out), Err(TagMismatch));
        assert!(out.iter().all(|&b| b == 0), "plaintext must not leak on failure");
    }

    #[test]
    fn tamper_detection() {
        let ocb = Ocb::new(&rfc_key());
        let n = Nonce::from_counter(1);
        let mut sealed = ocb.seal(&n, b"a", b"payload");
        // Flip every byte position in turn; all must be rejected.
        for i in 0..sealed.len() {
            sealed[i] ^= 1;
            assert_eq!(ocb.open(&n, b"a", &sealed), Err(TagMismatch), "pos {i}");
            sealed[i] ^= 1;
        }
        // Sanity: unmodified opens.
        assert!(ocb.open(&n, b"a", &sealed).is_ok());
    }

    #[test]
    fn wrong_context_rejected() {
        let ocb = Ocb::new(&rfc_key());
        let n = Nonce::from_counter(1);
        let sealed = ocb.seal(&n, b"a", b"payload");
        assert!(ocb.open(&Nonce::from_counter(2), b"a", &sealed).is_err());
        assert!(ocb.open(&n, b"b", &sealed).is_err());
        let other = Ocb::new(&Key::from_bytes([9u8; 16]));
        assert!(other.open(&n, b"a", &sealed).is_err());
        assert!(ocb.open(&n, b"a", &sealed[..10]).is_err(), "truncated input");
    }

    #[test]
    fn nonce_from_counter_distinct() {
        assert_ne!(Nonce::from_counter(1), Nonce::from_counter(2));
        assert_eq!(Nonce::from_counter(7).as_bytes()[11], 7);
    }

    #[test]
    fn debug_hides_key() {
        assert_eq!(format!("{:?}", rfc_key()), "Key(<hidden>)");
        assert_eq!(format!("{:?}", Ocb::new(&rfc_key())), "Ocb(<keyed context>)");
    }
}
