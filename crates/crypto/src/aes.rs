//! AES-128 block cipher (FIPS 197), from scratch.
//!
//! Only the 128-bit key size is provided — it is the only one HIX uses
//! (OCB-AES-128). Verified against the FIPS 197 Appendix B example and the
//! NIST AESAVS known-answer vectors.
//!
//! Three implementations live here, layered by role:
//!
//! - a **scalar reference** (`encrypt_block`/`decrypt_block`): byte-wise
//!   SubBytes/ShiftRows/MixColumns straight out of FIPS 197. It is the
//!   differential-test oracle for everything below and stays deliberately
//!   simple.
//! - a **portable wide core** (`encrypt_blocks`/`decrypt_blocks`, table
//!   backend): const-generated T-tables folding SubBytes+MixColumns into
//!   four lookups per column, with the decrypt side running the FIPS 197
//!   §5.3.5 *equivalent inverse cipher* over InvMixColumns-transformed
//!   round keys, so open costs the same as seal.
//! - a **hardware path** (AES-NI, x86_64): the same wide entry points
//!   dispatch at runtime to an 8-block-interleaved `aesenc`/`aesdec`
//!   pipeline when the CPU supports it. This mirrors the paper's own
//!   platform, where SGX-side crypto ran on AES-NI. The only `unsafe` in
//!   the crate lives in that module and is guarded by feature detection.
//!
//! The wide entry points process [`WIDE_BATCH`] blocks per pass; callers
//! (OCB) batch their offset ladder to match.

/// The AES block size in bytes.
pub const BLOCK: usize = 16;

/// Blocks processed per wide pass by [`Aes128::encrypt_blocks`] /
/// [`Aes128::decrypt_blocks`]. Callers that want the fast path should
/// present multiples of this many blocks at a time.
pub const WIDE_BATCH: usize = 8;

/// A 16-byte AES block.
pub type Block = [u8; BLOCK];

const SBOX: [u8; 256] = [
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab,
    0x76, 0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4,
    0x72, 0xc0, 0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71,
    0xd8, 0x31, 0x15, 0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2,
    0xeb, 0x27, 0xb2, 0x75, 0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6,
    0xb3, 0x29, 0xe3, 0x2f, 0x84, 0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb,
    0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf, 0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45,
    0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8, 0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5,
    0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2, 0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44,
    0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73, 0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a,
    0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb, 0xe0, 0x32, 0x3a, 0x0a, 0x49,
    0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79, 0xe7, 0xc8, 0x37, 0x6d,
    0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08, 0xba, 0x78, 0x25,
    0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a, 0x70, 0x3e,
    0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e, 0xe1,
    0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb,
    0x16,
];

const INV_SBOX: [u8; 256] = {
    let mut inv = [0u8; 256];
    let mut i = 0;
    while i < 256 {
        inv[SBOX[i] as usize] = i as u8;
        i += 1;
    }
    inv
};

const RCON: [u8; 10] = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36];

#[inline]
const fn xtime(b: u8) -> u8 {
    (b << 1) ^ (((b >> 7) & 1) * 0x1b)
}

// T-tables, const-generated from SBOX/INV_SBOX so there is no transcription
// risk. Entries are little-endian-packed columns; rotating an entry left by
// 8·r gives the table for row r (`te`/`td` below).
//
// TE0[x] = (2·S, S, S, 3·S) for S = SBOX[x]: the MixColumns contribution of
// the row-0 input byte to the four output bytes of its column.
const TE0: [u32; 256] = {
    let mut t = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let s = SBOX[i];
        let s2 = xtime(s);
        let s3 = s2 ^ s;
        t[i] = (s2 as u32) | ((s as u32) << 8) | ((s as u32) << 16) | ((s3 as u32) << 24);
        i += 1;
    }
    t
};

// TD0[x] = (14·I, 9·I, 13·I, 11·I) for I = INV_SBOX[x]: the InvMixColumns
// contribution of the row-0 byte, with InvSubBytes folded in (equivalent
// inverse cipher ordering).
const TD0: [u32; 256] = {
    let mut t = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let b = INV_SBOX[i];
        let x2 = xtime(b);
        let x4 = xtime(x2);
        let x8 = xtime(x4);
        let m14 = (x8 ^ x4 ^ x2) as u32;
        let m9 = (x8 ^ b) as u32;
        let m13 = (x8 ^ x4 ^ b) as u32;
        let m11 = (x8 ^ x2 ^ b) as u32;
        t[i] = m14 | (m9 << 8) | (m13 << 16) | (m11 << 24);
        i += 1;
    }
    t
};

/// An expanded AES-128 key (11 round keys each direction).
///
/// ```
/// use hix_crypto::aes::Aes128;
/// let aes = Aes128::new(&[0u8; 16]);
/// let ct = aes.encrypt_block([0u8; 16]);
/// assert_eq!(aes.decrypt_block(ct), [0u8; 16]);
/// ```
#[derive(Clone)]
pub struct Aes128 {
    /// Forward schedule (scalar oracle + AES-NI + T-table encrypt).
    round_keys: [[u8; 16]; 11],
    /// Equivalent-inverse-cipher schedule: `dec[0] = rk[10]`,
    /// `dec[r] = InvMixColumns(rk[10-r])` for 1..=9, `dec[10] = rk[0]`.
    /// Shared by the AES-NI (`aesdec`) and T-table decrypt paths.
    dec_round_keys: [[u8; 16]; 11],
    /// True when the CPU supports AES-NI and the wide entry points should
    /// use the hardware path.
    use_ni: bool,
}

impl std::fmt::Debug for Aes128 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print key material.
        f.write_str("Aes128(<expanded key>)")
    }
}

impl Aes128 {
    /// Expands a 16-byte key (both directions: forward schedule plus the
    /// equivalent-inverse-cipher schedule used by the wide decrypt path).
    pub fn new(key: &[u8; 16]) -> Self {
        let mut w = [[0u8; 4]; 44];
        for i in 0..4 {
            w[i] = [key[4 * i], key[4 * i + 1], key[4 * i + 2], key[4 * i + 3]];
        }
        for i in 4..44 {
            let mut t = w[i - 1];
            if i % 4 == 0 {
                t.rotate_left(1);
                for b in &mut t {
                    *b = SBOX[*b as usize];
                }
                t[0] ^= RCON[i / 4 - 1];
            }
            for j in 0..4 {
                w[i][j] = w[i - 4][j] ^ t[j];
            }
        }
        let mut round_keys = [[0u8; 16]; 11];
        for (r, rk) in round_keys.iter_mut().enumerate() {
            for c in 0..4 {
                rk[4 * c..4 * c + 4].copy_from_slice(&w[4 * r + c]);
            }
        }
        let mut dec_round_keys = [[0u8; 16]; 11];
        dec_round_keys[0] = round_keys[10];
        dec_round_keys[10] = round_keys[0];
        for r in 1..10 {
            let mut k = round_keys[10 - r];
            inv_mix_columns(&mut k);
            dec_round_keys[r] = k;
        }
        Aes128 { round_keys, dec_round_keys, use_ni: detect_aesni() }
    }

    /// Name of the backend the wide entry points will use: `"aes-ni"` on
    /// hardware with AES instructions, `"table"` otherwise.
    pub fn backend(&self) -> &'static str {
        if self.use_ni {
            "aes-ni"
        } else {
            "table"
        }
    }

    /// Returns a clone of this context pinned to the portable table
    /// backend, ignoring hardware support. Used by the differential suite
    /// (and fallback benches) to exercise the software wide path on
    /// machines where dispatch would otherwise always pick AES-NI.
    pub fn portable(&self) -> Self {
        let mut c = self.clone();
        c.use_ni = false;
        c
    }

    /// Encrypts one 16-byte block (scalar reference path; the oracle for
    /// the wide backends).
    pub fn encrypt_block(&self, mut state: Block) -> Block {
        add_round_key(&mut state, &self.round_keys[0]);
        for round in 1..10 {
            sub_bytes(&mut state);
            shift_rows(&mut state);
            mix_columns(&mut state);
            add_round_key(&mut state, &self.round_keys[round]);
        }
        sub_bytes(&mut state);
        shift_rows(&mut state);
        add_round_key(&mut state, &self.round_keys[10]);
        state
    }

    /// Decrypts one 16-byte block (scalar reference path).
    pub fn decrypt_block(&self, mut state: Block) -> Block {
        add_round_key(&mut state, &self.round_keys[10]);
        inv_shift_rows(&mut state);
        inv_sub_bytes(&mut state);
        for round in (1..10).rev() {
            add_round_key(&mut state, &self.round_keys[round]);
            inv_mix_columns(&mut state);
            inv_shift_rows(&mut state);
            inv_sub_bytes(&mut state);
        }
        add_round_key(&mut state, &self.round_keys[0]);
        state
    }

    /// Encrypts a run of blocks in place, [`WIDE_BATCH`] per pass.
    ///
    /// Dispatches to the AES-NI pipeline when available, else the portable
    /// T-table core. Byte-identical to mapping [`Self::encrypt_block`]
    /// over the slice (the differential suite pins this).
    pub fn encrypt_blocks(&self, blocks: &mut [Block]) {
        #[cfg(target_arch = "x86_64")]
        if self.use_ni {
            // SAFETY: `use_ni` is only set when runtime detection reported
            // AES-NI support (`detect_aesni`).
            unsafe { ni::encrypt_blocks(&self.round_keys, blocks) };
            return;
        }
        for b in blocks {
            tt_encrypt_block(&self.round_keys, b);
        }
    }

    /// Decrypts a run of blocks in place, [`WIDE_BATCH`] per pass; the
    /// mirror of [`Self::encrypt_blocks`], running the equivalent inverse
    /// cipher so open costs the same as seal.
    pub fn decrypt_blocks(&self, blocks: &mut [Block]) {
        #[cfg(target_arch = "x86_64")]
        if self.use_ni {
            // SAFETY: `use_ni` is only set when runtime detection reported
            // AES-NI support (`detect_aesni`).
            unsafe { ni::decrypt_blocks(&self.dec_round_keys, blocks) };
            return;
        }
        for b in blocks {
            tt_decrypt_block(&self.dec_round_keys, b);
        }
    }
}

#[cfg(target_arch = "x86_64")]
fn detect_aesni() -> bool {
    std::arch::is_x86_feature_detected!("aes")
}

#[cfg(not(target_arch = "x86_64"))]
fn detect_aesni() -> bool {
    false
}

#[inline]
fn add_round_key(state: &mut Block, rk: &[u8; 16]) {
    for (s, k) in state.iter_mut().zip(rk) {
        *s ^= k;
    }
}

#[inline]
fn sub_bytes(state: &mut Block) {
    for b in state.iter_mut() {
        *b = SBOX[*b as usize];
    }
}

#[inline]
fn inv_sub_bytes(state: &mut Block) {
    for b in state.iter_mut() {
        *b = INV_SBOX[*b as usize];
    }
}

// State layout: state[r + 4*c] is row r, column c (column-major as in FIPS
// 197's byte ordering of the input sequence).
#[inline]
fn shift_rows(state: &mut Block) {
    for r in 1..4 {
        let row = [state[r], state[r + 4], state[r + 8], state[r + 12]];
        for c in 0..4 {
            state[r + 4 * c] = row[(c + r) % 4];
        }
    }
}

#[inline]
fn inv_shift_rows(state: &mut Block) {
    for r in 1..4 {
        let row = [state[r], state[r + 4], state[r + 8], state[r + 12]];
        for c in 0..4 {
            state[r + 4 * c] = row[(c + 4 - r) % 4];
        }
    }
}

#[inline]
fn mix_columns(state: &mut Block) {
    for c in 0..4 {
        let col = [state[4 * c], state[4 * c + 1], state[4 * c + 2], state[4 * c + 3]];
        state[4 * c] = xtime(col[0]) ^ xtime(col[1]) ^ col[1] ^ col[2] ^ col[3];
        state[4 * c + 1] = col[0] ^ xtime(col[1]) ^ xtime(col[2]) ^ col[2] ^ col[3];
        state[4 * c + 2] = col[0] ^ col[1] ^ xtime(col[2]) ^ xtime(col[3]) ^ col[3];
        state[4 * c + 3] = xtime(col[0]) ^ col[0] ^ col[1] ^ col[2] ^ xtime(col[3]);
    }
}

// Fixed-constant InvMixColumns: each input byte needs {9, 11, 13, 14}·b,
// all built from one xtime chain (b, 2b, 4b, 8b) — 3 shifts + a handful of
// xors per byte instead of the old data-looped generic GF multiply (which
// cost 8 xtimes + branches per product, 64 products per block, and made
// decrypt ~2.3× slower than encrypt).
#[inline]
fn inv_mix_columns(state: &mut Block) {
    for c in 0..4 {
        let col = [state[4 * c], state[4 * c + 1], state[4 * c + 2], state[4 * c + 3]];
        let mut m9 = [0u8; 4];
        let mut m11 = [0u8; 4];
        let mut m13 = [0u8; 4];
        let mut m14 = [0u8; 4];
        for i in 0..4 {
            let b = col[i];
            let x2 = xtime(b);
            let x4 = xtime(x2);
            let x8 = xtime(x4);
            m9[i] = x8 ^ b;
            m11[i] = x8 ^ x2 ^ b;
            m13[i] = x8 ^ x4 ^ b;
            m14[i] = x8 ^ x4 ^ x2;
        }
        state[4 * c] = m14[0] ^ m11[1] ^ m13[2] ^ m9[3];
        state[4 * c + 1] = m9[0] ^ m14[1] ^ m11[2] ^ m13[3];
        state[4 * c + 2] = m13[0] ^ m9[1] ^ m14[2] ^ m11[3];
        state[4 * c + 3] = m11[0] ^ m13[1] ^ m9[2] ^ m14[3];
    }
}

// ---------------------------------------------------------------------------
// Portable wide core: T-table rounds over little-endian-packed columns.
// ---------------------------------------------------------------------------

#[inline]
fn te(row: u32, x: u32) -> u32 {
    TE0[x as usize].rotate_left(8 * row)
}

#[inline]
fn td(row: u32, x: u32) -> u32 {
    TD0[x as usize].rotate_left(8 * row)
}

#[inline]
fn load_columns(rk: &[u8; 16]) -> [u32; 4] {
    let mut c = [0u32; 4];
    for (j, cj) in c.iter_mut().enumerate() {
        *cj = u32::from_le_bytes(rk[4 * j..4 * j + 4].try_into().unwrap());
    }
    c
}

fn tt_encrypt_block(rk: &[[u8; 16]; 11], block: &mut Block) {
    let keys: [[u32; 4]; 11] = std::array::from_fn(|i| load_columns(&rk[i]));
    let mut c = load_columns(block);
    for (j, k) in keys[0].iter().enumerate() {
        c[j] ^= k;
    }
    for key in keys.iter().take(10).skip(1) {
        let mut d = [0u32; 4];
        for j in 0..4 {
            // ShiftRows: column j's row-r byte comes from column (j+r)%4.
            d[j] = te(0, c[j] & 0xff)
                ^ te(1, (c[(j + 1) % 4] >> 8) & 0xff)
                ^ te(2, (c[(j + 2) % 4] >> 16) & 0xff)
                ^ te(3, c[(j + 3) % 4] >> 24)
                ^ key[j];
        }
        c = d;
    }
    for j in 0..4 {
        let b0 = SBOX[(c[j] & 0xff) as usize] as u32;
        let b1 = SBOX[((c[(j + 1) % 4] >> 8) & 0xff) as usize] as u32;
        let b2 = SBOX[((c[(j + 2) % 4] >> 16) & 0xff) as usize] as u32;
        let b3 = SBOX[(c[(j + 3) % 4] >> 24) as usize] as u32;
        let v = (b0 | (b1 << 8) | (b2 << 16) | (b3 << 24)) ^ keys[10][j];
        block[4 * j..4 * j + 4].copy_from_slice(&v.to_le_bytes());
    }
}

fn tt_decrypt_block(dec_rk: &[[u8; 16]; 11], block: &mut Block) {
    let keys: [[u32; 4]; 11] = std::array::from_fn(|i| load_columns(&dec_rk[i]));
    let mut c = load_columns(block);
    for (j, k) in keys[0].iter().enumerate() {
        c[j] ^= k;
    }
    for key in keys.iter().take(10).skip(1) {
        let mut d = [0u32; 4];
        for j in 0..4 {
            // InvShiftRows: column j's row-r byte comes from column (j+4-r)%4.
            d[j] = td(0, c[j] & 0xff)
                ^ td(1, (c[(j + 3) % 4] >> 8) & 0xff)
                ^ td(2, (c[(j + 2) % 4] >> 16) & 0xff)
                ^ td(3, c[(j + 1) % 4] >> 24)
                ^ key[j];
        }
        c = d;
    }
    for j in 0..4 {
        let b0 = INV_SBOX[(c[j] & 0xff) as usize] as u32;
        let b1 = INV_SBOX[((c[(j + 3) % 4] >> 8) & 0xff) as usize] as u32;
        let b2 = INV_SBOX[((c[(j + 2) % 4] >> 16) & 0xff) as usize] as u32;
        let b3 = INV_SBOX[(c[(j + 1) % 4] >> 24) as usize] as u32;
        let v = (b0 | (b1 << 8) | (b2 << 16) | (b3 << 24)) ^ keys[10][j];
        block[4 * j..4 * j + 4].copy_from_slice(&v.to_le_bytes());
    }
}

// ---------------------------------------------------------------------------
// Hardware wide core: AES-NI, 8 interleaved block pipelines per pass.
// The only unsafe code in the crate; every entry is `#[target_feature]`
// and reached solely behind `detect_aesni()`.
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod ni {
    use super::{Block, WIDE_BATCH};
    use core::arch::x86_64::{
        __m128i, _mm_aesdec_si128, _mm_aesdeclast_si128, _mm_aesenc_si128, _mm_aesenclast_si128,
        _mm_loadu_si128, _mm_storeu_si128, _mm_xor_si128,
    };

    #[inline]
    unsafe fn load_keys(rk: &[[u8; 16]; 11]) -> [__m128i; 11] {
        let mut keys = [_mm_loadu_si128(rk[0].as_ptr().cast()); 11];
        for i in 1..11 {
            keys[i] = _mm_loadu_si128(rk[i].as_ptr().cast());
        }
        keys
    }

    /// # Safety
    /// Caller must have verified AES-NI support at runtime.
    #[target_feature(enable = "aes")]
    pub unsafe fn encrypt_blocks(rk: &[[u8; 16]; 11], blocks: &mut [Block]) {
        let keys = load_keys(rk);
        let mut chunks = blocks.chunks_exact_mut(WIDE_BATCH);
        for ch in &mut chunks {
            let mut s = [keys[0]; WIDE_BATCH];
            for (i, b) in ch.iter().enumerate() {
                s[i] = _mm_xor_si128(_mm_loadu_si128(b.as_ptr().cast()), keys[0]);
            }
            for key in keys.iter().take(10).skip(1) {
                for si in s.iter_mut() {
                    *si = _mm_aesenc_si128(*si, *key);
                }
            }
            for (i, b) in ch.iter_mut().enumerate() {
                _mm_storeu_si128(b.as_mut_ptr().cast(), _mm_aesenclast_si128(s[i], keys[10]));
            }
        }
        for b in chunks.into_remainder() {
            let mut s = _mm_xor_si128(_mm_loadu_si128(b.as_ptr().cast()), keys[0]);
            for key in keys.iter().take(10).skip(1) {
                s = _mm_aesenc_si128(s, *key);
            }
            _mm_storeu_si128(b.as_mut_ptr().cast(), _mm_aesenclast_si128(s, keys[10]));
        }
    }

    /// # Safety
    /// Caller must have verified AES-NI support at runtime. `dec_rk` is the
    /// equivalent-inverse-cipher schedule (InvMixColumns-transformed middle
    /// round keys), which is exactly what `aesdec` consumes.
    #[target_feature(enable = "aes")]
    pub unsafe fn decrypt_blocks(dec_rk: &[[u8; 16]; 11], blocks: &mut [Block]) {
        let keys = load_keys(dec_rk);
        let mut chunks = blocks.chunks_exact_mut(WIDE_BATCH);
        for ch in &mut chunks {
            let mut s = [keys[0]; WIDE_BATCH];
            for (i, b) in ch.iter().enumerate() {
                s[i] = _mm_xor_si128(_mm_loadu_si128(b.as_ptr().cast()), keys[0]);
            }
            for key in keys.iter().take(10).skip(1) {
                for si in s.iter_mut() {
                    *si = _mm_aesdec_si128(*si, *key);
                }
            }
            for (i, b) in ch.iter_mut().enumerate() {
                _mm_storeu_si128(b.as_mut_ptr().cast(), _mm_aesdeclast_si128(s[i], keys[10]));
            }
        }
        for b in chunks.into_remainder() {
            let mut s = _mm_xor_si128(_mm_loadu_si128(b.as_ptr().cast()), keys[0]);
            for key in keys.iter().take(10).skip(1) {
                s = _mm_aesdec_si128(s, *key);
            }
            _mm_storeu_si128(b.as_mut_ptr().cast(), _mm_aesdeclast_si128(s, keys[10]));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    fn block(s: &str) -> Block {
        hex(s).try_into().unwrap()
    }

    /// The old generic GF(2^8) multiply, kept as the reference for the
    /// fixed-constant `inv_mix_columns`.
    fn mul_ref(a: u8, mut b: u8) -> u8 {
        let mut acc = 0u8;
        let mut a = a;
        while a != 0 {
            if a & 1 != 0 {
                acc ^= b;
            }
            b = xtime(b);
            a >>= 1;
        }
        acc
    }

    fn inv_mix_columns_ref(state: &mut Block) {
        for c in 0..4 {
            let col = [state[4 * c], state[4 * c + 1], state[4 * c + 2], state[4 * c + 3]];
            state[4 * c] =
                mul_ref(0x0e, col[0]) ^ mul_ref(0x0b, col[1]) ^ mul_ref(0x0d, col[2]) ^ mul_ref(0x09, col[3]);
            state[4 * c + 1] =
                mul_ref(0x09, col[0]) ^ mul_ref(0x0e, col[1]) ^ mul_ref(0x0b, col[2]) ^ mul_ref(0x0d, col[3]);
            state[4 * c + 2] =
                mul_ref(0x0d, col[0]) ^ mul_ref(0x09, col[1]) ^ mul_ref(0x0e, col[2]) ^ mul_ref(0x0b, col[3]);
            state[4 * c + 3] =
                mul_ref(0x0b, col[0]) ^ mul_ref(0x0d, col[1]) ^ mul_ref(0x09, col[2]) ^ mul_ref(0x0e, col[3]);
        }
    }

    #[test]
    fn fixed_inv_mix_columns_matches_generic_multiply() {
        hix_testkit::prop::prop("aes_inv_mix_columns_fixed").run(|s| {
            let mut a = s.array_u8::<16>();
            let mut b = a;
            inv_mix_columns(&mut a);
            inv_mix_columns_ref(&mut b);
            assert_eq!(a, b);
        });
    }

    #[test]
    fn encrypt_decrypt_roundtrip_for_arbitrary_keys_and_blocks() {
        hix_testkit::prop::prop("aes_block_roundtrip").run(|s| {
            let aes = Aes128::new(&s.array_u8::<16>());
            let pt = s.array_u8::<16>();
            assert_eq!(aes.decrypt_block(aes.encrypt_block(pt)), pt);
        });
    }

    #[test]
    fn fips197_appendix_b() {
        // FIPS 197 Appendix B worked example.
        let aes = Aes128::new(&block("2b7e151628aed2a6abf7158809cf4f3c"));
        let ct = aes.encrypt_block(block("3243f6a8885a308d313198a2e0370734"));
        assert_eq!(ct, block("3925841d02dc09fbdc118597196a0b32"));
    }

    #[test]
    fn fips197_appendix_c1() {
        // FIPS 197 Appendix C.1 AES-128 known answer.
        let aes = Aes128::new(&block("000102030405060708090a0b0c0d0e0f"));
        let ct = aes.encrypt_block(block("00112233445566778899aabbccddeeff"));
        assert_eq!(ct, block("69c4e0d86a7b0430d8cdb78070b4c55a"));
        assert_eq!(
            aes.decrypt_block(block("69c4e0d86a7b0430d8cdb78070b4c55a")),
            block("00112233445566778899aabbccddeeff")
        );
    }

    #[test]
    fn fips197_appendix_c1_wide_both_backends() {
        // The same known answer through the wide entry points, on whichever
        // backend dispatch picks and on the portable core explicitly.
        let aes = Aes128::new(&block("000102030405060708090a0b0c0d0e0f"));
        for ctx in [aes.clone(), aes.portable()] {
            let mut blocks = [block("00112233445566778899aabbccddeeff"); 9];
            ctx.encrypt_blocks(&mut blocks);
            for b in &blocks {
                assert_eq!(*b, block("69c4e0d86a7b0430d8cdb78070b4c55a"), "{}", ctx.backend());
            }
            ctx.decrypt_blocks(&mut blocks);
            for b in &blocks {
                assert_eq!(*b, block("00112233445566778899aabbccddeeff"), "{}", ctx.backend());
            }
        }
    }

    #[test]
    fn aesavs_varkey_vectors() {
        // NIST AESAVS VarKey known answers (plaintext = 0).
        let cases = [
            ("80000000000000000000000000000000", "0edd33d3c621e546455bd8ba1418bec8"),
            ("c0000000000000000000000000000000", "4bc3f883450c113c64ca42e1112a9e87"),
            ("ffffffffffffffffffffffffffffffff", "a1f6258c877d5fcd8964484538bfc92c"),
        ];
        for (k, c) in cases {
            let aes = Aes128::new(&block(k));
            assert_eq!(aes.encrypt_block([0u8; 16]), block(c), "key {k}");
            // Wide paths agree on the same vector.
            for ctx in [aes.clone(), aes.portable()] {
                let mut w = [[0u8; 16]];
                ctx.encrypt_blocks(&mut w);
                assert_eq!(w[0], block(c), "wide {} key {k}", ctx.backend());
                ctx.decrypt_blocks(&mut w);
                assert_eq!(w[0], [0u8; 16], "wide-dec {} key {k}", ctx.backend());
            }
        }
    }

    #[test]
    fn wide_backends_match_scalar_oracle() {
        // Differential: both wide backends byte-identical to the scalar
        // reference over generated keys and block runs that straddle the
        // 8-block batch boundary.
        hix_testkit::prop::prop("aes_wide_vs_scalar").run(|s| {
            let aes = Aes128::new(&s.array_u8::<16>());
            let n = (s.u64() % 21) as usize; // 0..=20 blocks: remainders + full batches
            let mut blocks = vec![[0u8; 16]; n];
            for b in blocks.iter_mut() {
                *b = s.array_u8::<16>();
            }
            let expect_ct: Vec<Block> = blocks.iter().map(|b| aes.encrypt_block(*b)).collect();
            for ctx in [aes.clone(), aes.portable()] {
                let mut w = blocks.clone();
                ctx.encrypt_blocks(&mut w);
                assert_eq!(w, expect_ct, "encrypt {}", ctx.backend());
                ctx.decrypt_blocks(&mut w);
                assert_eq!(w, blocks, "decrypt {}", ctx.backend());
            }
        });
    }

    #[test]
    fn roundtrip_random_blocks() {
        let aes = Aes128::new(&block("2b7e151628aed2a6abf7158809cf4f3c"));
        let mut x = [0x5au8; 16];
        for _ in 0..100 {
            let ct = aes.encrypt_block(x);
            assert_eq!(aes.decrypt_block(ct), x);
            x = ct; // chain to vary inputs
        }
    }

    #[test]
    fn debug_does_not_leak_key() {
        let aes = Aes128::new(&[7u8; 16]);
        let s = format!("{aes:?}");
        assert!(!s.contains("07"), "debug output must not contain key bytes");
        assert!(!s.is_empty());
    }
}
