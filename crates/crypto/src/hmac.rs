//! HMAC-SHA-256 (RFC 2104), used for enclave report MACs and as the PRF
//! inside the KDF and DRBG.

use crate::sha256::{digest, Digest, Sha256};

/// Computes `HMAC-SHA256(key, msg)`.
///
/// ```
/// use hix_crypto::hmac::hmac_sha256;
/// let tag = hmac_sha256(b"key", b"message");
/// assert_eq!(tag.len(), 32);
/// ```
pub fn hmac_sha256(key: &[u8], msg: &[u8]) -> Digest {
    let mut mac = HmacSha256::new(key);
    mac.update(msg);
    mac.finish()
}

/// Incremental HMAC-SHA-256.
#[derive(Debug, Clone)]
pub struct HmacSha256 {
    inner: Sha256,
    opad_key: [u8; 64],
}

impl HmacSha256 {
    /// Creates a MAC instance keyed with `key` (any length).
    pub fn new(key: &[u8]) -> Self {
        let mut k = [0u8; 64];
        if key.len() > 64 {
            k[..32].copy_from_slice(&digest(key));
        } else {
            k[..key.len()].copy_from_slice(key);
        }
        let mut ipad_key = [0u8; 64];
        let mut opad_key = [0u8; 64];
        for i in 0..64 {
            ipad_key[i] = k[i] ^ 0x36;
            opad_key[i] = k[i] ^ 0x5c;
        }
        let mut inner = Sha256::new();
        inner.update(&ipad_key);
        HmacSha256 { inner, opad_key }
    }

    /// Absorbs message bytes.
    pub fn update(&mut self, msg: &[u8]) {
        self.inner.update(msg);
    }

    /// Finalizes and returns the 32-byte tag.
    pub fn finish(self) -> Digest {
        let inner_digest = self.inner.finish();
        let mut outer = Sha256::new();
        outer.update(&self.opad_key);
        outer.update(&inner_digest);
        outer.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hexd(s: &str) -> Digest {
        let mut out = [0u8; 32];
        for (i, b) in out.iter_mut().enumerate() {
            *b = u8::from_str_radix(&s[2 * i..2 * i + 2], 16).unwrap();
        }
        out
    }

    #[test]
    fn rfc4231_case1() {
        let tag = hmac_sha256(&[0x0b; 20], b"Hi There");
        assert_eq!(
            tag,
            hexd("b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7")
        );
    }

    #[test]
    fn rfc4231_case2() {
        let tag = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            tag,
            hexd("5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843")
        );
    }

    #[test]
    fn rfc4231_case3() {
        let tag = hmac_sha256(&[0xaa; 20], &[0xdd; 50]);
        assert_eq!(
            tag,
            hexd("773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe")
        );
    }

    #[test]
    fn rfc4231_case6_long_key() {
        let tag = hmac_sha256(
            &[0xaa; 131],
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            tag,
            hexd("60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54")
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let mut m = HmacSha256::new(b"k");
        m.update(b"hello ");
        m.update(b"world");
        assert_eq!(m.finish(), hmac_sha256(b"k", b"hello world"));
    }
}
