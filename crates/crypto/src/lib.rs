//! # hix-crypto — cryptographic primitives for the HIX reproduction
//!
//! Everything HIX needs, implemented from scratch in safe Rust and tested
//! against published vectors:
//!
//! * [`aes`] — AES-128 block cipher (FIPS 197).
//! * [`ocb`] — OCB authenticated encryption (RFC 7253), the algorithm the
//!   paper uses for all DMA / inter-enclave data protection ("OCB-AES-128",
//!   §5.2).
//! * [`sha256`] / [`hmac`] — SHA-256 and HMAC-SHA-256, used for enclave
//!   measurement, report MACs, and key derivation.
//! * [`dh`] — finite-field Diffie–Hellman (RFC 3526 group 14) for the
//!   user-enclave / GPU-enclave / GPU key agreement (§4.4.1).
//! * [`kdf`] — HKDF-style key derivation over HMAC-SHA-256.
//! * [`drbg`] — a deterministic HMAC-DRBG for reproducible simulations.
//!
//! This crate is pure (no simulator dependencies): it operates on byte
//! slices only. Virtual-time charging for crypto happens in the layers
//! that call it.
//!
//! ```
//! use hix_crypto::ocb::{self, Key, Nonce};
//!
//! let key = Key::from_bytes([0u8; 16]);
//! let nonce = Nonce::from_counter(1);
//! let sealed = ocb::seal(&key, &nonce, b"header", b"secret payload");
//! let opened = ocb::open(&key, &nonce, b"header", &sealed).unwrap();
//! assert_eq!(opened, b"secret payload");
//! ```

#![warn(missing_docs)]

pub mod aes;
pub mod dh;
pub mod drbg;
pub mod hmac;
pub mod kdf;
pub mod bignum;
pub mod ocb;
pub mod sha256;

/// Constant-time equality over byte slices.
///
/// Returns `false` immediately if lengths differ; within equal-length
/// comparisons the timing does not depend on the data.
pub fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut acc = 0u8;
    for (x, y) in a.iter().zip(b) {
        acc |= x ^ y;
    }
    acc == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ct_eq_basic() {
        assert!(ct_eq(b"abc", b"abc"));
        assert!(!ct_eq(b"abc", b"abd"));
        assert!(!ct_eq(b"abc", b"ab"));
        assert!(ct_eq(b"", b""));
    }
}
