//! Seedable, deterministic PRNG for tests, benches, and workload input
//! generation.
//!
//! The generator is xoshiro256** (Blackman & Vigna), seeded through
//! SplitMix64 as its authors recommend. Neither algorithm is
//! cryptographic — the simulator's security-relevant randomness stays on
//! [`hix-crypto`'s HMAC-DRBG] — but both are fast, tiny, and have
//! published reference outputs, which is exactly what reproducible test
//! input generation needs.
//!
//! [`hix-crypto`'s HMAC-DRBG]: ../../hix_crypto/drbg/index.html

/// Advances a SplitMix64 state and returns the next output.
///
/// This is the full reference algorithm (Steele, Lea & Flood; the
/// `java.util.SplittableRandom` finalizer), usable on its own for
/// hashing a seed into well-mixed 64-bit values.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A deterministic xoshiro256** generator.
///
/// ```
/// use hix_testkit::rng::Rng;
/// let mut a = Rng::new(42);
/// let mut b = Rng::new(42);
/// assert_eq!(a.u64(), b.u64());
/// ```
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Creates a generator from a 64-bit seed (expanded via SplitMix64).
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        Rng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Creates a generator from an arbitrary byte-string seed
    /// (workloads seed from labels like `"bfs-500"`).
    pub fn from_seed_bytes(seed: &[u8]) -> Self {
        // FNV-1a folds the bytes; SplitMix64 then de-correlates nearby
        // labels ("gs-31"/"gs-32") when expanding the state.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for &b in seed {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Rng::new(h)
    }

    /// Creates a generator from a string seed.
    pub fn from_seed_str(seed: &str) -> Self {
        Rng::from_seed_bytes(seed.as_bytes())
    }

    /// Next raw 64-bit output.
    pub fn u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1]
            .wrapping_mul(5)
            .rotate_left(7)
            .wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Next 32-bit output (upper half of a 64-bit draw).
    pub fn u32(&mut self) -> u32 {
        (self.u64() >> 32) as u32
    }

    /// Next byte.
    pub fn u8(&mut self) -> u8 {
        (self.u64() >> 56) as u8
    }

    /// Next boolean.
    pub fn bool(&mut self) -> bool {
        self.u64() >> 63 == 1
    }

    /// Uniform value in `[lo, hi)`. Panics when the range is empty.
    ///
    /// Modulo reduction has a bias of at most 2⁻⁴⁰ for the range widths
    /// tests use (< 2²⁴) — irrelevant for input generation, and the
    /// simple reduction keeps replayed byte tapes stable.
    pub fn gen_range(&mut self, range: std::ops::Range<u64>) -> u64 {
        assert!(range.start < range.end, "empty range {range:?}");
        range.start + self.u64() % (range.end - range.start)
    }

    /// Uniform `usize` in `[lo, hi)`.
    pub fn gen_range_usize(&mut self, range: std::ops::Range<usize>) -> usize {
        self.gen_range(range.start as u64..range.end as u64) as usize
    }

    /// Uniform float in `[0, 1)` with 53 bits of precision.
    pub fn f64(&mut self) -> f64 {
        (self.u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform float in `[0, 1)` (single precision).
    pub fn f32(&mut self) -> f32 {
        (self.u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }

    /// Fills `buf` with pseudorandom bytes.
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        for chunk in buf.chunks_mut(8) {
            let v = self.u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }

    /// Returns `len` pseudorandom bytes.
    pub fn bytes(&mut self, len: usize) -> Vec<u8> {
        let mut out = vec![0u8; len];
        self.fill_bytes(&mut out);
        out
    }

    /// Returns a fixed-size array of pseudorandom bytes.
    pub fn array<const N: usize>(&mut self) -> [u8; N] {
        let mut out = [0u8; N];
        self.fill_bytes(&mut out);
        out
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.gen_range(0..(i as u64 + 1)) as usize;
            slice.swap(i, j);
        }
    }

    /// Uniformly chooses one element. Panics on an empty slice.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> &'a T {
        &slice[self.gen_range_usize(0..slice.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix64_known_answer() {
        // Published reference outputs for seed 0 (SplittableRandom /
        // Vigna's splitmix64.c).
        let mut s = 0u64;
        assert_eq!(splitmix64(&mut s), 0xe220_a839_7b1d_cdaf);
        assert_eq!(splitmix64(&mut s), 0x6e78_9e6a_a1b9_65f4);
        assert_eq!(splitmix64(&mut s), 0x06c4_5d18_8009_454f);
        assert_eq!(splitmix64(&mut s), 0xf88b_b8a8_724c_81ec);
    }

    #[test]
    fn xoshiro_known_answer_seed_zero() {
        // First outputs of xoshiro256** with its state seeded from
        // SplitMix64(0) — locks both the seeding path and the core.
        let mut rng = Rng::new(0);
        assert_eq!(
            [rng.u64(), rng.u64(), rng.u64(), rng.u64()],
            KAT_SEED0,
        );
    }

    #[test]
    fn xoshiro_known_answer_seed_hix() {
        let mut rng = Rng::new(0x4849_5821); // "HIX!"
        assert_eq!([rng.u64(), rng.u64()], KAT_SEED_HIX);
    }

    // Regression vectors generated once from this implementation and
    // cross-checked against the reference C (see module docs).
    const KAT_SEED0: [u64; 4] = [
        0x99ec_5f36_cb75_f2b4,
        0xbf6e_1f78_4956_452a,
        0x1a5f_849d_4933_e6e0,
        0x6aa5_94f1_262d_2d2c,
    ];
    const KAT_SEED_HIX: [u64; 2] = [0xa9cf_4078_6293_f1cd, 0x449f_5cc4_fa35_8448];

    #[test]
    fn seeds_are_separated() {
        let mut seen = std::collections::HashSet::new();
        for seed in 0u64..64 {
            let mut rng = Rng::new(seed);
            assert!(seen.insert(rng.u64()), "seed {seed} collided");
        }
        for label in ["bfs-500", "bfs-501", "gs-32", "gs-33", ""] {
            let mut rng = Rng::from_seed_str(label);
            assert!(seen.insert(rng.u64()), "label {label:?} collided");
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = Rng::new(7);
        for _ in 0..1000 {
            let v = rng.gen_range(10..17);
            assert!((10..17).contains(&v));
        }
        assert_eq!(rng.gen_range(5..6), 5, "width-1 range is constant");
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut a = Rng::new(9);
        let mut b = Rng::new(9);
        let mut buf = [0u8; 13];
        a.fill_bytes(&mut buf);
        // First 8 bytes must be the LE encoding of the first draw.
        assert_eq!(buf[..8], b.u64().to_le_bytes());
        assert_ne!(buf, [0u8; 13]);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Rng::new(3);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "astronomically unlikely to be identity");
    }

    #[test]
    fn floats_land_in_unit_interval() {
        let mut rng = Rng::new(11);
        for _ in 0..1000 {
            let f = rng.f64();
            assert!((0.0..1.0).contains(&f));
            let g = rng.f32();
            assert!((0.0..1.0).contains(&g));
        }
    }
}
