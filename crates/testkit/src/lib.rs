//! # hix-testkit — in-tree deterministic test & bench harness
//!
//! The reproduction's verify path must run hermetically: no network, no
//! crates.io registry, and bit-for-bit reproducible test inputs (the
//! paper's §4 security argument and §5 evaluation both rest on
//! deterministic enclave/PCIe/GPU interleavings). This crate replaces
//! the three external dev-dependencies the workspace used to carry:
//!
//! * [`rng`] — a seedable SplitMix64 / xoshiro256** PRNG (replaces
//!   `rand`) for workload input generation and test data,
//! * [`prop`] — a property-testing harness with tape-based generation,
//!   automatic shrinking, and a persistent seed corpus (replaces
//!   `proptest`),
//! * [`bench`] — a calibrating micro-benchmark runner with median/p95
//!   reporting (replaces `criterion`).
//!
//! Everything here is plain `std`; the workspace builds and tests with
//! `cargo --offline` on a machine that has never seen a registry.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bench;
pub mod prop;
pub mod rng;

pub use rng::Rng;
