//! A micro-benchmark runner — the in-tree replacement for Criterion.
//!
//! Each benchmark warms up, calibrates an iteration count so one batch
//! of calls takes roughly [`TARGET_BATCH_NS`], then times a fixed number
//! of batches and reports per-iteration median, p95, and min. Numbers
//! are wall-clock (these benches measure the *functional* plane — how
//! much host time the simulator's real byte-work costs — not the
//! virtual-clock model).
//!
//! ```no_run
//! use hix_testkit::bench::Bench;
//! Bench::new("sha256/64KiB")
//!     .throughput_bytes(64 * 1024)
//!     .run(|| hix_crypto_digest_stand_in());
//! # fn hix_crypto_digest_stand_in() -> u64 { 0 }
//! ```

use std::time::Instant;

/// Re-export: keep benched expressions out of the optimizer's reach.
pub use std::hint::black_box;

/// Target duration of one timed batch, in nanoseconds (10 ms).
pub const TARGET_BATCH_NS: u64 = 10_000_000;

/// Warmup duration, in nanoseconds (50 ms).
pub const WARMUP_NS: u64 = 50_000_000;

/// Number of timed batches per benchmark.
pub const BATCHES: usize = 30;

/// Minimum iterations per timed batch. A single iteration gives one
/// noisy sample per batch — a big row (e.g. sealing 1 MiB) whose cost
/// hovers around the batch target would calibrate to 1 and report
/// scheduler jitter as signal. Every batch averages over at least this
/// many calls.
pub const MIN_ITERS: u64 = 8;

/// Picks how many iterations one timed batch should run so the batch
/// lasts about `target_ns`, given an observed per-iteration cost.
/// Monotone: a longer target or a cheaper operation never yields fewer
/// iterations, and the count never drops below [`MIN_ITERS`].
pub fn calibrate_iters(per_iter_ns: u64, target_ns: u64) -> u64 {
    (target_ns / per_iter_ns.max(1)).max(MIN_ITERS)
}

/// One benchmark, identified by a Criterion-style `group/name` label.
pub struct Bench {
    name: String,
    throughput_bytes: Option<u64>,
}

impl Bench {
    /// Starts a benchmark named `name`.
    pub fn new(name: impl Into<String>) -> Self {
        Bench { name: name.into(), throughput_bytes: None }
    }

    /// Reports throughput (MiB/s) for an operation processing `bytes`
    /// bytes per iteration.
    pub fn throughput_bytes(mut self, bytes: u64) -> Self {
        self.throughput_bytes = Some(bytes);
        self
    }

    /// Times `f`, prints a report line, and returns the measurement.
    pub fn run<T>(self, mut f: impl FnMut() -> T) -> Measurement {
        // Warmup: run until the warmup budget elapses, tracking the
        // observed rate for calibration.
        let start = Instant::now();
        let mut warm_iters = 0u64;
        while (start.elapsed().as_nanos() as u64) < WARMUP_NS {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter = (start.elapsed().as_nanos() as u64 / warm_iters.max(1)).max(1);
        let iters = calibrate_iters(per_iter, TARGET_BATCH_NS);

        let mut samples = Vec::with_capacity(BATCHES);
        for _ in 0..BATCHES {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            samples.push((t0.elapsed().as_nanos() as u64 / iters).max(1));
        }
        samples.sort_unstable();
        // Percentile convention shared with `hix_sim::stats::Samples`.
        let m = Measurement {
            name: self.name,
            iters,
            median_ns: hix_obs::percentile_sorted(&samples, 50).expect("BATCHES > 0"),
            p95_ns: hix_obs::percentile_sorted(&samples, 95).expect("BATCHES > 0"),
            min_ns: samples[0],
            throughput_bytes: self.throughput_bytes,
        };
        println!("{m}");
        m
    }
}

/// The result of one benchmark run.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Benchmark label.
    pub name: String,
    /// Iterations per timed batch (after calibration).
    pub iters: u64,
    /// Median per-iteration time across batches.
    pub median_ns: u64,
    /// 95th-percentile per-iteration time across batches.
    pub p95_ns: u64,
    /// Fastest per-iteration time across batches.
    pub min_ns: u64,
    /// Bytes processed per iteration, when reporting throughput.
    pub throughput_bytes: Option<u64>,
}

impl Measurement {
    /// Median throughput in MiB/s (zero without a byte count).
    pub fn mib_per_sec(&self) -> f64 {
        match self.throughput_bytes {
            Some(bytes) => {
                bytes as f64 / (1 << 20) as f64 * 1e9 / self.median_ns as f64
            }
            None => 0.0,
        }
    }
}

impl std::fmt::Display for Measurement {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:<44} {:>12}/iter  (p95 {}, min {}, {} iters/batch)",
            self.name,
            fmt_ns(self.median_ns),
            fmt_ns(self.p95_ns),
            fmt_ns(self.min_ns),
            self.iters,
        )?;
        if self.throughput_bytes.is_some() {
            write!(f, "  {:>9.1} MiB/s", self.mib_per_sec())?;
        }
        Ok(())
    }
}

use hix_obs::fmt_ns;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_is_monotone_in_target() {
        let mut prev = 0;
        for target in [1_000u64, 10_000, 1_000_000, 10_000_000, 100_000_000] {
            let iters = calibrate_iters(250, target);
            assert!(iters >= prev, "target {target}: {iters} < {prev}");
            prev = iters;
        }
    }

    #[test]
    fn calibration_is_monotone_in_cost() {
        let mut prev = u64::MAX;
        for per_iter in [1u64, 10, 1_000, 1_000_000, 10_000_000] {
            let iters = calibrate_iters(per_iter, TARGET_BATCH_NS);
            assert!(iters <= prev, "cost {per_iter}: {iters} > {prev}");
            assert!(iters >= MIN_ITERS, "never below the floor");
            prev = iters;
        }
        // An op slower than the whole batch target still averages over
        // the minimum batch — one call per batch is too noisy to report.
        assert_eq!(calibrate_iters(u64::MAX, TARGET_BATCH_NS), MIN_ITERS);
        assert_eq!(calibrate_iters(0, TARGET_BATCH_NS), TARGET_BATCH_NS);
    }

    #[test]
    fn measurement_formats_units() {
        let m = Measurement {
            name: "x".into(),
            iters: 3,
            median_ns: 123,
            p95_ns: 45_000,
            min_ns: 100,
            throughput_bytes: Some(1 << 20),
        };
        let s = m.to_string();
        assert!(s.contains("123 ns"), "{s}");
        assert!(s.contains("45.00 µs"), "{s}");
        assert!(s.contains("MiB/s"), "{s}");
        // 1 MiB per 123 ns ≈ 8.1 GB/s.
        assert!((m.mib_per_sec() - 1e9 / 123.0 / 1.0).abs() / m.mib_per_sec() < 0.01);
    }
}
