//! Minimal property-based testing with automatic input shrinking and a
//! persistent seed corpus — the in-tree replacement for `proptest`.
//!
//! # Model
//!
//! A property is a closure over a [`Source`] of pseudorandom draws. The
//! harness runs it for [`Config::cases`] freshly seeded sources; a panic
//! (any failed `assert!`) is a counterexample. Every draw a source hands
//! out is recorded on a byte *tape*, so the failing input is fully
//! described by the consumed tape. Shrinking then edits the tape —
//! deleting chunks, zeroing spans, decrementing bytes — and replays the
//! property; edits that keep the property failing are kept. Because
//! draws replayed past the end of a tape return zeros, shorter/smaller
//! tapes decode to structurally smaller values, and the loop converges
//! on a minimal counterexample without any per-type shrinker.
//!
//! # Corpus
//!
//! Minimal tapes are printable hex. A seeds file pins them forever:
//!
//! ```text
//! # one entry per line: <property-name> <hex-tape>  [# comment]
//! device_survives_arbitrary_mmio 000233…  # doorbell length confusion
//! ```
//!
//! [`Prop::corpus`] replays every matching entry before generating new
//! cases, so regressions found once are re-checked on every run.

use crate::rng::{splitmix64, Rng};
use std::panic::{self, AssertUnwindSafe};

/// A source of pseudorandom draws, recorded on (or replayed from) a
/// byte tape.
pub struct Source {
    tape: Vec<u8>,
    pos: usize,
    rng: Option<Rng>,
}

impl Source {
    /// A fresh generating source: draws come from `rng` and are
    /// recorded.
    fn generating(rng: Rng) -> Self {
        Source { tape: Vec::new(), pos: 0, rng: Some(rng) }
    }

    /// A replaying source: draws come from `tape`; past its end every
    /// byte is zero (decoding to minimal values).
    fn replaying(tape: Vec<u8>) -> Self {
        Source { tape, pos: 0, rng: None }
    }

    fn byte(&mut self) -> u8 {
        let b = if self.pos < self.tape.len() {
            self.tape[self.pos]
        } else if let Some(rng) = &mut self.rng {
            let b = rng.u8();
            self.tape.push(b);
            b
        } else {
            0
        };
        self.pos += 1;
        b
    }

    /// An arbitrary byte.
    pub fn u8(&mut self) -> u8 {
        self.byte()
    }

    /// An arbitrary `u16` (little-endian draw).
    pub fn u16(&mut self) -> u16 {
        u16::from_le_bytes([self.byte(), self.byte()])
    }

    /// An arbitrary `u32`.
    pub fn u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        b.iter_mut().for_each(|x| *x = self.byte());
        u32::from_le_bytes(b)
    }

    /// An arbitrary `u64`.
    pub fn u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        b.iter_mut().for_each(|x| *x = self.byte());
        u64::from_le_bytes(b)
    }

    /// An arbitrary `u128`.
    pub fn u128(&mut self) -> u128 {
        let mut b = [0u8; 16];
        b.iter_mut().for_each(|x| *x = self.byte());
        u128::from_le_bytes(b)
    }

    /// An arbitrary boolean.
    pub fn bool(&mut self) -> bool {
        self.byte() & 1 == 1
    }

    /// Uniform value in `[lo, hi)`, encoded compactly: ranges no wider
    /// than 2⁸/2¹⁶/2³² consume 1/2/4 tape bytes. A zero tape decodes to
    /// `lo`, so shrinking drives draws toward the range start.
    pub fn in_range(&mut self, range: std::ops::Range<u64>) -> u64 {
        assert!(range.start < range.end, "empty range {range:?}");
        let width = range.end - range.start;
        let raw = if width <= 1 << 8 {
            self.u8() as u64
        } else if width <= 1 << 16 {
            self.u16() as u64
        } else if width <= 1 << 32 {
            self.u32() as u64
        } else {
            self.u64()
        };
        range.start + raw % width
    }

    /// Uniform `usize` in `[lo, hi)`.
    pub fn usize_in(&mut self, range: std::ops::Range<usize>) -> usize {
        self.in_range(range.start as u64..range.end as u64) as usize
    }

    /// A choice among `n` alternatives (for generating enum variants).
    pub fn choice(&mut self, n: usize) -> usize {
        self.usize_in(0..n)
    }

    /// An index into a collection of length `len` (the `Index`
    /// equivalent). Panics when `len` is zero.
    pub fn index(&mut self, len: usize) -> usize {
        self.usize_in(0..len)
    }

    /// A byte vector with length drawn from `len_range`.
    pub fn vec_u8(&mut self, len_range: std::ops::Range<usize>) -> Vec<u8> {
        let len = self.usize_in(len_range);
        (0..len).map(|_| self.byte()).collect()
    }

    /// A fixed-size array of arbitrary bytes.
    pub fn array_u8<const N: usize>(&mut self) -> [u8; N] {
        let mut out = [0u8; N];
        out.iter_mut().for_each(|x| *x = self.byte());
        out
    }

    /// A vector of values built by `f`, with length drawn from
    /// `len_range`.
    pub fn collect<T>(
        &mut self,
        len_range: std::ops::Range<usize>,
        mut f: impl FnMut(&mut Source) -> T,
    ) -> Vec<T> {
        let len = self.usize_in(len_range);
        (0..len).map(|_| f(self)).collect()
    }

    fn consumed(&self) -> Vec<u8> {
        let end = self.pos.min(self.tape.len());
        self.tape[..end].to_vec()
    }
}

/// Harness configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of random cases to generate (corpus replays are extra).
    pub cases: u32,
    /// Base seed; each case derives its own stream from it.
    pub seed: u64,
    /// Cap on property re-executions while shrinking.
    pub max_shrink_iters: u32,
}

impl Default for Config {
    fn default() -> Self {
        Config { cases: 256, seed: 0x4849_5821, max_shrink_iters: 4096 }
    }
}

/// A failing case: the minimal tape found and the panic it causes.
#[derive(Debug)]
pub struct Failure {
    /// Property name.
    pub name: String,
    /// Minimal failing tape (hex-encode to pin in a seeds file).
    pub tape: Vec<u8>,
    /// Panic message of the minimal case.
    pub message: String,
    /// Where the case came from.
    pub origin: Origin,
}

/// Provenance of a counterexample.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Origin {
    /// Generated fresh from `seed` at this case index.
    Generated {
        /// Base seed the case stream derived from.
        seed: u64,
        /// Index of the failing case.
        case: u32,
    },
    /// Replayed from a seeds-file entry (1-based line number).
    Corpus {
        /// Path of the seeds file.
        path: String,
        /// 1-based line number of the entry.
        line: usize,
    },
}

/// Builder for one property check.
pub struct Prop {
    name: String,
    config: Config,
    corpus: Vec<(String, usize, Vec<u8>)>,
}

/// Starts a property check named `name` (the name keys corpus entries
/// and appears in failure reports).
pub fn prop(name: &str) -> Prop {
    Prop { name: name.to_string(), config: Config::default(), corpus: Vec::new() }
}

impl Prop {
    /// Overrides the number of generated cases.
    pub fn cases(mut self, cases: u32) -> Self {
        self.config.cases = cases;
        self
    }

    /// Overrides the base seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Replays every entry for this property from a seeds file before
    /// generating new cases. A missing file is not an error (no
    /// regressions recorded yet); a malformed line is.
    pub fn corpus(mut self, path: &str) -> Self {
        let Ok(text) = std::fs::read_to_string(path) else {
            return self;
        };
        for (i, line) in text.lines().enumerate() {
            let line = line.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let mut parts = line.split_whitespace();
            let (Some(name), Some(hex)) = (parts.next(), parts.next()) else {
                panic!("{path}:{}: malformed seeds entry {line:?}", i + 1);
            };
            if name != self.name {
                continue;
            }
            let tape = decode_hex(hex)
                .unwrap_or_else(|| panic!("{path}:{}: bad hex tape", i + 1));
            self.corpus.push((path.to_string(), i + 1, tape));
        }
        self
    }

    /// Runs the check, panicking with a reproducible report on failure.
    pub fn run(self, property: impl Fn(&mut Source)) {
        if let Err(f) = self.run_raw(property) {
            let hex = encode_hex(&f.tape);
            panic!(
                "property `{}` failed ({:?}).\n\
                 minimal input tape: {hex}\n\
                 pin it by adding this line to the seeds file:\n\
                 {} {hex}\n\
                 case panic: {}",
                f.name, f.origin, f.name, f.message,
            );
        }
    }

    /// Like [`Prop::run`], but returns the failure instead of
    /// panicking (used by the harness's own tests).
    pub fn run_raw(self, property: impl Fn(&mut Source)) -> Result<(), Failure> {
        // Corpus entries first: known regressions re-checked every run.
        for (path, line, tape) in &self.corpus {
            if let Err(message) = run_once(&property, Source::replaying(tape.clone())) {
                return Err(Failure {
                    name: self.name,
                    tape: tape.clone(),
                    message,
                    origin: Origin::Corpus { path: path.clone(), line: *line },
                });
            }
        }
        // Fresh cases: each derives an independent stream from the base
        // seed, the property name, and the case index.
        let mut name_hash = 0xcbf2_9ce4_8422_2325u64;
        for b in self.name.bytes() {
            name_hash = (name_hash ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
        }
        for case in 0..self.config.cases {
            let mut sm = self.config.seed ^ name_hash ^ (case as u64) << 32;
            let rng = Rng::new(splitmix64(&mut sm));
            let mut src = Source::generating(rng);
            if let Err(message) = run_once(&property, &mut src) {
                let tape = src.consumed();
                let (tape, message) =
                    shrink(&property, tape, message, self.config.max_shrink_iters);
                return Err(Failure {
                    name: self.name,
                    tape,
                    message,
                    origin: Origin::Generated { seed: self.config.seed, case },
                });
            }
        }
        Ok(())
    }
}

/// Runs the property once over a source, converting a panic into
/// `Err(message)`.
fn run_once(
    property: &impl Fn(&mut Source),
    mut src: impl std::borrow::BorrowMut<Source>,
) -> Result<(), String> {
    let result = with_quiet_panics(|| {
        panic::catch_unwind(AssertUnwindSafe(|| property(src.borrow_mut())))
    });
    result.map_err(|e| {
        if let Some(s) = e.downcast_ref::<&str>() {
            s.to_string()
        } else if let Some(s) = e.downcast_ref::<String>() {
            s.clone()
        } else {
            "<non-string panic payload>".to_string()
        }
    })
}

/// Suppresses the default panic hook (backtrace spam) while probing
/// cases; a process-wide mutex keeps concurrent property tests from
/// clobbering each other's hook swap.
fn with_quiet_panics<T>(f: impl FnOnce() -> T) -> T {
    use std::sync::Mutex;
    static HOOK_LOCK: Mutex<()> = Mutex::new(());
    let guard = HOOK_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let prev = panic::take_hook();
    panic::set_hook(Box::new(|_| {}));
    let out = f();
    panic::set_hook(prev);
    drop(guard);
    out
}

/// Tape shrinking: chunk deletion, span zeroing, and binary-search
/// minimization of little-endian words. Each accepted edit restarts
/// the pass list, so the result is a local fixpoint (no single edit of
/// these kinds can shrink it further) unless the iteration cap is hit.
fn shrink(
    property: &impl Fn(&mut Source),
    mut tape: Vec<u8>,
    mut message: String,
    max_iters: u32,
) -> (Vec<u8>, String) {
    let iters = std::cell::Cell::new(0u32);
    // Probes a candidate; on a still-failing property returns the
    // consumed prefix (the adoptable shrunk tape) and the new message.
    let probe = |cand: &[u8]| -> Option<(Vec<u8>, String)> {
        if iters.get() >= max_iters {
            return None;
        }
        iters.set(iters.get() + 1);
        let mut src = Source::replaying(cand.to_vec());
        match run_once(property, &mut src) {
            Err(m) => Some((src.consumed(), m)),
            Ok(()) => None,
        }
    };
    'outer: loop {
        if iters.get() >= max_iters {
            break;
        }
        // Pass 1: delete chunks, large to small, back to front. Every
        // adopted result is strictly shorter.
        for size in [64usize, 16, 4, 1] {
            for i in (0..tape.len().saturating_sub(size - 1)).rev() {
                let mut cand = tape.clone();
                cand.drain(i..i + size);
                if let Some((t, m)) = probe(&cand) {
                    (tape, message) = (t, m);
                    continue 'outer;
                }
            }
        }
        // Pass 2: zero non-zero spans (strictly reduces the byte sum).
        for size in [16usize, 4] {
            for i in (0..tape.len()).step_by(size) {
                let end = (i + size).min(tape.len());
                if tape[i..end].iter().all(|&b| b == 0) {
                    continue;
                }
                let mut cand = tape.clone();
                cand[i..end].fill(0);
                if let Some((t, m)) = probe(&cand) {
                    (tape, message) = (t, m);
                    continue 'outer;
                }
            }
        }
        // Pass 3: treat each aligned window as a little-endian word and
        // binary-search the smallest failing value. Converges in
        // O(log v) probes per word — a plain decrement loop would blow
        // the iteration cap on wide scalar draws.
        for width in [8usize, 4, 2, 1] {
            for i in 0..tape.len().saturating_sub(width - 1) {
                let read = |t: &[u8]| -> u64 {
                    t[i..i + width]
                        .iter()
                        .rev()
                        .fold(0u64, |acc, &b| (acc << 8) | b as u64)
                };
                let v = read(&tape);
                if v == 0 {
                    continue;
                }
                let write = |t: &mut [u8], mut val: u64| {
                    for b in &mut t[i..i + width] {
                        *b = val as u8;
                        val >>= 8;
                    }
                };
                let (mut lo, mut hi) = (0u64, v);
                let mut best: Option<(Vec<u8>, String)> = None;
                while lo < hi && iters.get() < max_iters {
                    let mid = lo + (hi - lo) / 2;
                    let mut cand = tape.clone();
                    write(&mut cand, mid);
                    match probe(&cand) {
                        Some(found) => {
                            hi = mid;
                            best = Some(found);
                        }
                        None => lo = mid + 1,
                    }
                }
                if let Some((t, m)) = best {
                    if hi < v {
                        (tape, message) = (t, m);
                        continue 'outer;
                    }
                }
            }
        }
        break;
    }
    (tape, message)
}

/// Hex-encodes a tape for seeds files and failure reports.
pub fn encode_hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

/// Decodes a hex tape; `None` on malformed input.
pub fn decode_hex(s: &str) -> Option<Vec<u8>> {
    if s.len() % 2 != 0 {
        return None;
    }
    (0..s.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&s[i..i + 2], 16).ok())
        .collect()
}

/// Replays a tape through a decoder — used by tests that want to see
/// the value a (possibly shrunk or hand-written) tape decodes to.
pub fn decode_tape<T>(tape: &[u8], f: impl FnOnce(&mut Source) -> T) -> T {
    f(&mut Source::replaying(tape.to_vec()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let count = std::cell::Cell::new(0u32);
        prop("trivially_true")
            .cases(300)
            .run_raw(|s| {
                count.set(count.get() + 1);
                let v = s.vec_u8(0..32);
                assert!(v.len() < 32);
            })
            .unwrap();
        assert_eq!(count.get(), 300);
    }

    #[test]
    fn shrinking_converges_to_minimal_counterexample() {
        // Planted failure: any byte vector of length >= 10. The minimal
        // tape must decode to exactly 10 zero bytes.
        let failure = prop("planted_len_10")
            .cases(512)
            .run_raw(|s| {
                let v = s.vec_u8(0..64);
                assert!(v.len() < 10, "vector too long: {}", v.len());
            })
            .unwrap_err();
        let v = decode_tape(&failure.tape, |s| s.vec_u8(0..64));
        assert_eq!(v, vec![0u8; 10], "not minimal: {v:?}");
        assert!(failure.message.contains("too long"));
    }

    #[test]
    fn shrinking_minimizes_scalar_draws() {
        // Planted failure: value >= 1000 in [0, 1<<20). Minimal is 1000.
        let failure = prop("planted_ge_1000")
            .cases(512)
            .run_raw(|s| {
                let v = s.in_range(0..1 << 20);
                assert!(v < 1000);
            })
            .unwrap_err();
        let v = decode_tape(&failure.tape, |s| s.in_range(0..1 << 20));
        assert_eq!(v, 1000, "not minimal");
    }

    #[test]
    fn replay_beyond_tape_yields_minimal_values() {
        let (a, b, v) = decode_tape(&[], |s| (s.u64(), s.in_range(5..100), s.vec_u8(1..8)));
        assert_eq!(a, 0);
        assert_eq!(b, 5);
        assert_eq!(v, vec![0u8]);
    }

    #[test]
    fn corpus_entries_are_replayed_and_reported() {
        let dir = std::env::temp_dir().join("hix-testkit-corpus-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("seeds");
        // 0x2a = 42 decodes (via u8) to the planted failing value.
        std::fs::write(&path, "# pinned\nother_prop ff\nbad_byte 2a # planted\n").unwrap();
        let failure = prop("bad_byte")
            .cases(0)
            .corpus(path.to_str().unwrap())
            .run_raw(|s| assert_ne!(s.u8(), 42))
            .unwrap_err();
        assert!(matches!(failure.origin, Origin::Corpus { line: 3, .. }));
        assert_eq!(failure.tape, vec![42]);
        // The entry for the other property must not leak in.
        prop("bad_byte_unrelated")
            .cases(0)
            .corpus(path.to_str().unwrap())
            .run_raw(|s| assert_ne!(s.u8(), 42))
            .unwrap();
    }

    #[test]
    fn hex_roundtrip() {
        let tape = vec![0x00, 0x0f, 0xf0, 0xff, 0x33];
        assert_eq!(decode_hex(&encode_hex(&tape)).unwrap(), tape);
        assert_eq!(decode_hex("0"), None);
        assert_eq!(decode_hex("zz"), None);
    }

    #[test]
    fn failures_are_deterministic_for_a_seed() {
        let run = || {
            prop("det")
                .cases(64)
                .seed(99)
                .run_raw(|s| {
                    let v = s.u32();
                    assert!(v % 3 != 0);
                })
                .unwrap_err()
        };
        let (a, b) = (run(), run());
        assert_eq!(a.tape, b.tape);
        assert_eq!(a.origin, b.origin);
    }
}
