//! Attack demo: play the privileged adversary of the paper's threat
//! model (§3) and watch each HIX defense fire.
//!
//! ```sh
//! cargo run -p hix-bench --example attack_demo
//! ```

use hix_attacks::{run_all, Verdict};

fn main() {
    println!("You are the OS. You control page tables, the IOMMU, PCIe");
    println!("config space, scheduling, and raw DRAM. The tenant's data is");
    println!("on the GPU behind HIX. Try everything:\n");
    for report in run_all() {
        let point = if report.figure_point == 0 {
            "extra".to_string()
        } else {
            format!("fig10-{}", report.figure_point)
        };
        println!("[{point}] {}", report.name);
        println!("    attack : {}", report.attack);
        match report.verdict {
            Verdict::Blocked { mechanism } => println!("    result : BLOCKED — {mechanism}\n"),
            Verdict::Breached { detail } => println!("    result : BREACHED — {detail}\n"),
        }
    }
    println!("(every scenario is also an assertion in `cargo test -p hix-attacks`)");
}
