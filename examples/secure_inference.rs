//! Secure ML inference: the motivating cloud scenario of the paper's
//! introduction — a tenant's proprietary model weights and private input
//! run on a cloud GPU whose operating system is hostile.
//!
//! A 2-layer perceptron (the Rodinia BP forward pass) runs under HIX.
//! After the transfer we *become the adversary*: dump every byte of host
//! DRAM the OS can address and search for the weights. They never appear
//! — only ciphertext crosses the host.
//!
//! ```sh
//! cargo run -p hix-bench --example secure_inference
//! ```

use hix_core::{GpuEnclave, GpuEnclaveOptions, HixSession};
use hix_driver::rig::{standard_rig, RigOptions};
use hix_platform::mem::PAGE_SIZE;
use hix_sim::Payload;
use hix_workloads::exec::HixExec;
use hix_workloads::rodinia::bp::BackProp;
use hix_workloads::Workload;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut machine = standard_rig(RigOptions {
        kernels: BackProp.kernels(),
        ..RigOptions::default()
    });
    let mut enclave = GpuEnclave::launch(&mut machine, GpuEnclaveOptions::default())?;
    let mut session = HixSession::connect(&mut machine, &mut enclave)?;

    // The tenant's proprietary payload: a recognizable secret embedded in
    // a tensor the adversary would love to steal.
    let marker = b"PROPRIETARY-MODEL-WEIGHTS-v7";
    let mut tensor = vec![0u8; 64 * 1024];
    tensor[1000..1000 + marker.len()].copy_from_slice(marker);
    let dev = session.malloc(&mut machine, &mut enclave, tensor.len() as u64)?;
    let shared_bus = session.shared_bus();
    session.memcpy_htod(&mut machine, &mut enclave, dev, &Payload::from_bytes(tensor))?;
    println!("tenant uploaded {}-KiB weight tensor through the secure path", 64);

    // --- adversary time: dump the shared-memory window physically. ---
    let mut found = false;
    for page in 0..64u64 {
        if let Some(pa) = machine.iommu_mut().translate(shared_bus.offset(page * PAGE_SIZE)) {
            let mut dump = vec![0u8; PAGE_SIZE as usize];
            machine.os_read_phys(pa, &mut dump);
            if dump.windows(marker.len()).any(|w| w == marker) {
                found = true;
            }
        }
    }
    println!(
        "adversary dumped the inter-enclave shared memory: weights {}",
        if found { "FOUND (!!)" } else { "not found — ciphertext only" }
    );
    assert!(!found, "plaintext weights must never cross the host");

    // The weights are *really there* for the GPU though: read them back
    // through the secure path.
    let back = session.memcpy_dtoh(&mut machine, &mut enclave, dev, 64 * 1024)?;
    assert!(back.bytes().windows(marker.len()).any(|w| w == marker));
    println!("round-trip through GPU memory verified: data intact inside the TEE");

    // Now run the actual inference workload end-to-end (functional BP
    // with CPU-reference verification) on the secure stack.
    let mut exec = HixExec::new(&mut session, &mut enclave);
    let stats = BackProp.run(&mut machine, &mut exec, 2048)?;
    println!(
        "BP forward+update verified against the CPU reference ({} KiB moved, {} launches)",
        (stats.htod_bytes + stats.dtoh_bytes) >> 10,
        stats.launches
    );
    println!("virtual time elapsed: {}", machine.clock().now());
    Ok(())
}
