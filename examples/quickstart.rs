//! Quickstart: boot the simulated platform, launch the GPU enclave,
//! connect a user session, and run a kernel on secret data.
//!
//! ```sh
//! cargo run -p hix-bench --example quickstart
//! ```

use hix_core::{GpuEnclave, GpuEnclaveOptions, HixSession};
use hix_driver::rig::{standard_rig, RigOptions};
use hix_gpu::vram::DevAddr;
use hix_gpu::{GpuKernel, KernelError, KernelExec};
use hix_sim::{CostModel, Nanos, Payload};

/// A user-supplied GPU kernel: doubles `n` i32 values in place.
struct DoubleKernel;

impl GpuKernel for DoubleKernel {
    fn name(&self) -> &str {
        "example.double"
    }

    fn cost(&self, _model: &CostModel, args: &[u64]) -> Nanos {
        Nanos::from_micros(args.get(1).copied().unwrap_or(0) / 100 + 10)
    }

    fn run(&self, exec: &mut KernelExec<'_>) -> Result<(), KernelError> {
        let ptr = DevAddr(exec.arg(0)?);
        let n = exec.arg(1)? as usize;
        let mut v = exec.read_i32s(ptr, n)?;
        for x in &mut v {
            *x *= 2;
        }
        exec.write_i32s(ptr, &v)
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Boot the simulated machine: CPU with SGX + HIX extensions, PCIe
    //    fabric with a root port, and the GPU with our kernel installed.
    let mut machine = standard_rig(RigOptions {
        kernels: vec![Box::new(DoubleKernel)],
        ..RigOptions::default()
    });
    println!("machine booted at virtual t = {}", machine.clock().now());

    // 2. Launch the GPU enclave: it takes exclusive ownership of the GPU
    //    (EGCREATE + PCIe MMIO lockdown), verifies the GPU BIOS, resets
    //    the device, and registers its trusted MMIO (EGADD).
    let mut enclave = GpuEnclave::launch(&mut machine, GpuEnclaveOptions::default())?;
    println!(
        "GPU enclave launched; BIOS digest {:02x?}…",
        &enclave.bios_digest()[..4]
    );

    // 3. Connect a user session: SGX local attestation, pairwise DH for
    //    the channel key, and the three-party DH with the GPU itself for
    //    the data key.
    let mut session = HixSession::connect(&mut machine, &mut enclave)?;
    println!("session {} connected (keys agreed with GPU)", session.id());

    // 4. Use the CUDA-shaped API. All data crossing the untrusted host
    //    is OCB-AES sealed; it is decrypted only inside the GPU.
    session.load_module(&mut machine, &mut enclave, "example.double")?;
    let secret: Vec<i32> = (1..=8).collect();
    let bytes: Vec<u8> = secret.iter().flat_map(|v| v.to_le_bytes()).collect();
    let dev = session.malloc(&mut machine, &mut enclave, bytes.len() as u64)?;
    session.memcpy_htod(&mut machine, &mut enclave, dev, &Payload::from_bytes(bytes))?;
    session.launch(
        &mut machine,
        &mut enclave,
        "example.double",
        &[dev.value(), secret.len() as u64],
    )?;
    let out = session.memcpy_dtoh(&mut machine, &mut enclave, dev, (secret.len() * 4) as u64)?;
    let doubled: Vec<i32> = out
        .bytes()
        .chunks_exact(4)
        .map(|c| i32::from_le_bytes(c.try_into().unwrap()))
        .collect();
    println!("input  : {secret:?}");
    println!("output : {doubled:?}");
    assert_eq!(doubled, vec![2, 4, 6, 8, 10, 12, 14, 16]);

    // 5. Clean up: the GPU context is destroyed and its memory scrubbed.
    session.close(&mut machine, &mut enclave)?;
    enclave.shutdown(&mut machine)?;
    println!("done at virtual t = {}", machine.clock().now());
    Ok(())
}
