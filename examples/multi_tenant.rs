//! Multi-tenant cloud GPU: several user enclaves share one GPU through
//! the resident GPU enclave (§4.5 — one GPU context per tenant, unlike
//! pre-Volta MPS which merges everyone into a single address space).
//!
//! Shows: per-tenant isolation on the device via the *batched* command
//! queue (submit + one flush per tenant), doorbell-wake amortization,
//! scrub-on-free, and the Figure 8/9 multi-user timing model.
//!
//! ```sh
//! cargo run -p hix-bench --example multi_tenant
//! ```

use hix_core::multiuser::{run_multiuser, Mode};
use hix_core::{CmdStatus, GpuEnclave, GpuEnclaveOptions, HixSession};
use hix_driver::rig::{standard_rig, RigOptions};
use hix_sim::{CostModel, Payload};
use hix_workloads::rodinia::hotspot::Hotspot;
use hix_workloads::Workload;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut machine = standard_rig(RigOptions::default());
    let mut enclave = GpuEnclave::launch(&mut machine, GpuEnclaveOptions::default())?;

    // Three tenants connect; each gets its own GPU context and its own
    // session keys from an independent three-party exchange.
    let mut tenants = Vec::new();
    for name in ["alice", "bob", "carol"] {
        let session =
            HixSession::connect_with(&mut machine, &mut enclave, 1 << 20, name.as_bytes())?;
        println!("tenant {name:>5}: session {} (ctx {:?})", session.id(),
            enclave.session_ctx(session.id()).unwrap());
        tenants.push(session);
    }
    assert_eq!(enclave.session_count(), 3);

    // Each tenant writes its own pattern through the batched command
    // queue: four writes and a barrier ride ONE submission frame (one
    // doorbell, one wake) instead of five request/response roundtrips.
    let mut buffers = Vec::new();
    let mut submitted = 0u64;
    // Allocations stay synchronous — each tenant needs its address to
    // build the rest of the batch against.
    for session in tenants.iter_mut() {
        buffers.push(session.malloc(&mut machine, &mut enclave, 4 * 4096)?);
    }
    let wakes_before = machine.trace().metrics().counter("cmdq.wakes");
    for (i, session) in tenants.iter_mut().enumerate() {
        let dev = buffers[i];
        let fill = vec![0x10 * (i as u8 + 1); 4096];
        // One staged write plus three device-side fills of the same
        // pattern — five commands, one frame, one doorbell.
        session.submit_htod(&mut machine, &mut enclave, dev, &Payload::from_bytes(fill))?;
        for chunk in 1..4u64 {
            session.submit_memset(
                &mut machine,
                &mut enclave,
                dev.offset(chunk * 4096),
                4096,
                0x10 * (i as u8 + 1),
            )?;
        }
        session.submit_sync(&mut machine, &mut enclave)?;
        submitted += 5;
        session.flush(&mut machine, &mut enclave)?;
        for (id, status) in session.take_completions() {
            assert!(matches!(status, CmdStatus::Ok), "command {id:?} failed");
        }
    }
    let wakes = machine.trace().metrics().counter("cmdq.wakes") - wakes_before;
    for (i, session) in tenants.iter_mut().enumerate() {
        let back = session.memcpy_dtoh(&mut machine, &mut enclave, buffers[i], 4 * 4096)?;
        assert!(back.bytes().iter().all(|&b| b == 0x10 * (i as u8 + 1)));
    }
    println!("cross-tenant isolation verified: each context sees only its own data");

    // Doorbell amortization: the queue woke the GPU enclave once per
    // flushed frame, not once per command.
    println!(
        "batched submission: {submitted} commands in {wakes} wakes \
         ({:.1} commands per doorbell)",
        submitted as f64 / wakes.max(1) as f64
    );
    assert!(wakes < submitted, "batching must amortize doorbell wakes");

    // A tenant frees memory; the trusted runtime scrubs it, so the next
    // tenant allocation can never observe residue (§4.5). Frees ride the
    // same queue.
    let alice = &mut tenants[0];
    alice.submit_free(&mut machine, &mut enclave, buffers[0])?;
    alice.flush(&mut machine, &mut enclave)?;
    alice.take_completions();
    println!("alice's buffer freed and scrubbed on the GPU");

    for session in tenants {
        session.close(&mut machine, &mut enclave)?;
    }
    println!("all sessions closed; {} contexts remain", enclave.session_count());

    // Finally, the Figure 8/9 timing question: what does sharing cost?
    let model = CostModel::paper();
    let spec = Hotspot.profile(&model).task_spec();
    println!("\nconcurrent-tenant timing (Hotspot profile):");
    for users in [1u32, 2, 4] {
        let g = run_multiuser(&model, &spec, users, Mode::Gdev);
        let h = run_multiuser(&model, &spec, users, Mode::Hix);
        println!(
            "  {users} user(s): Gdev {} | HIX {} ({} ctx switches)",
            g.makespan, h.makespan, h.ctx_switches
        );
    }
    Ok(())
}
