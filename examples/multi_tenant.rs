//! Multi-tenant cloud GPU: several user enclaves share one GPU through
//! the resident GPU enclave (§4.5 — one GPU context per tenant, unlike
//! pre-Volta MPS which merges everyone into a single address space).
//!
//! Shows: per-tenant isolation on the device, scrub-on-free, and the
//! Figure 8/9 multi-user timing model.
//!
//! ```sh
//! cargo run -p hix-bench --example multi_tenant
//! ```

use hix_core::multiuser::{run_multiuser, Mode};
use hix_core::{GpuEnclave, GpuEnclaveOptions, HixSession};
use hix_driver::rig::{standard_rig, RigOptions};
use hix_sim::{CostModel, Payload};
use hix_workloads::rodinia::hotspot::Hotspot;
use hix_workloads::Workload;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut machine = standard_rig(RigOptions::default());
    let mut enclave = GpuEnclave::launch(&mut machine, GpuEnclaveOptions::default())?;

    // Three tenants connect; each gets its own GPU context and its own
    // session keys from an independent three-party exchange.
    let mut tenants = Vec::new();
    for name in ["alice", "bob", "carol"] {
        let session =
            HixSession::connect_with(&mut machine, &mut enclave, 1 << 20, name.as_bytes())?;
        println!("tenant {name:>5}: session {} (ctx {:?})", session.id(),
            enclave.session_ctx(session.id()).unwrap());
        tenants.push(session);
    }
    assert_eq!(enclave.session_count(), 3);

    // Each tenant writes its own pattern; every readback must see only
    // its own bytes (device page tables isolate the contexts).
    let mut buffers = Vec::new();
    for (i, session) in tenants.iter_mut().enumerate() {
        let dev = session.malloc(&mut machine, &mut enclave, 4096)?;
        let fill = vec![0x10 * (i as u8 + 1); 4096];
        session.memcpy_htod(&mut machine, &mut enclave, dev, &Payload::from_bytes(fill))?;
        buffers.push(dev);
    }
    for (i, session) in tenants.iter_mut().enumerate() {
        let back = session.memcpy_dtoh(&mut machine, &mut enclave, buffers[i], 4096)?;
        assert!(back.bytes().iter().all(|&b| b == 0x10 * (i as u8 + 1)));
    }
    println!("cross-tenant isolation verified: each context sees only its own data");

    // A tenant frees memory; the trusted runtime scrubs it, so the next
    // tenant allocation can never observe residue (§4.5).
    let alice = &mut tenants[0];
    alice.free(&mut machine, &mut enclave, buffers[0])?;
    println!("alice's buffer freed and scrubbed on the GPU");

    for session in tenants {
        session.close(&mut machine, &mut enclave)?;
    }
    println!("all sessions closed; {} contexts remain", enclave.session_count());

    // Finally, the Figure 8/9 timing question: what does sharing cost?
    let model = CostModel::paper();
    let spec = Hotspot.profile(&model).task_spec();
    println!("\nconcurrent-tenant timing (Hotspot profile):");
    for users in [1u32, 2, 4] {
        let g = run_multiuser(&model, &spec, users, Mode::Gdev);
        let h = run_multiuser(&model, &spec, users, Mode::Hix);
        println!(
            "  {users} user(s): Gdev {} | HIX {} ({} ctx switches)",
            g.makespan, h.makespan, h.ctx_switches
        );
    }
    Ok(())
}
