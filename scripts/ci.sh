#!/usr/bin/env bash
# Tier-1 verify — fully hermetic: no network, no crates.io registry.
# The workspace has zero external dependencies (see crates/testkit), so
# everything below runs with --offline on a cold machine.
set -euo pipefail
cd "$(dirname "$0")/.."

build_log=$(mktemp)
trap 'rm -f "$build_log"' EXIT

cargo build --release --offline 2>&1 | tee "$build_log"
# Every workspace crate must stay warning-clean: the lower layers
# (testkit, obs, sim) are part of every verify path and the Table-2 TCB
# breakdown, and the rest sit inside the trust boundary.
for crate in $(sed -n 's/^name = "\(hix-[a-z-]*\)"$/\1/p' crates/*/Cargo.toml); do
    if grep -E "$crate.*generated [0-9]+ warning" "$build_log"; then
        echo "error: cargo build emitted warnings in $crate" >&2
        exit 1
    fi
done

cargo test -q --offline

# Observability smoke test: trace_report exports a Perfetto trace from
# both stacks and exits non-zero on an empty trace, accounting drift, or
# a non-deterministic same-seed run.
cargo run -q --release --offline -p hix-bench --bin trace_report target/trace-report

# Fault-matrix smoke: 3 seeds x {none, light, heavy} fault profiles on
# the secure matrix workload. Exits non-zero if faulted GPU results are
# not byte-identical to the fault-free run, if a clean wire records any
# recovery work, or if a same-seed faulted rerun is not deterministic.
cargo run -q --release --offline -p hix-bench --bin fault_report

# Watchdog smoke: 3 seeds x {none, gpu-light, gpu-heavy} device-fault
# profiles plus the 4-user peer-interference matrix. Exits non-zero if
# faulted GPU results diverge from the fault-free run, a peer stalls
# past the quarantine bound, eviction fails to cap a repeat offender,
# or a same-seed rerun is not deterministic.
cargo run -q --release --offline -p hix-bench --bin tdr_report

# Scale smoke: the weighted-fair scheduler sweep at 4 and 100 users x
# {none, light, heavy} fault profiles. The bin self-checks fairness,
# sublinearity, parking accounting, and double-run determinism; here we
# additionally pin cross-invocation stability (two smokes must emit
# byte-identical JSON) and that the emitted file parses with the stable
# key order --check expects. The committed 10k-user BENCH_scale.json
# must stay parseable too.
cargo run -q --release --offline -p hix-bench --bin scale_report -- --smoke target/scale-a.json
cargo run -q --release --offline -p hix-bench --bin scale_report -- --smoke target/scale-b.json
cmp target/scale-a.json target/scale-b.json
cargo run -q --release --offline -p hix-bench --bin scale_report -- --check target/scale-a.json
cargo run -q --release --offline -p hix-bench --bin scale_report -- --check BENCH_scale.json

# Serving-path attribution + async command-queue smoke: 4 tenants x
# {none, light, heavy} fault profiles, each profile run through both
# submission engines (synchronous wrappers and explicit batch-8 rings)
# with request attribution and span recording on. The bin self-checks
# the reconciliation invariant (attributed + unattributed charge == the
# per-category accumulator, +-0), that every request's critical path
# fits inside its end-to-end window, same-seed determinism in both
# engines, byte-identical GPU results across engines, and the batching
# acceptance gates (>=4x fewer channel wakes per queued op on the clean
# profile, p99 no worse than sync); here we additionally pin
# cross-invocation stability (double-run cmp) and that the emitted file
# passes --check — including its `batched` column — as must the
# committed full-sweep BENCH_perf.json baseline.
cargo run -q --release --offline -p hix-bench --bin perf_report -- --smoke target/perf-a.json
cargo run -q --release --offline -p hix-bench --bin perf_report -- --smoke target/perf-b.json
cmp target/perf-a.json target/perf-b.json
cargo run -q --release --offline -p hix-bench --bin perf_report -- --check target/perf-a.json
cargo run -q --release --offline -p hix-bench --bin perf_report -- --check BENCH_perf.json

# Fabric smoke: the multi-GPU sharded-enclave sweep at 1 and 2 GPUs x
# {none, shard-storm, switch-correlated} fault profiles x 3 seeds. The
# bin self-checks shard-local reset containment (blast radius 0 outside
# the resetting shard), byte-identical tenant service across all seeds,
# cross-shard migration of parked sessions on every faulted multi-GPU
# run, model-level peer bit-identity during a reset, and double-run
# determinism; here we additionally pin cross-invocation stability and
# --check both the fresh smoke JSON and the committed full-sweep
# BENCH_fabric.json.
cargo run -q --release --offline -p hix-bench --bin fabric_report -- --smoke target/fabric-a.json
cargo run -q --release --offline -p hix-bench --bin fabric_report -- --smoke target/fabric-b.json
cmp target/fabric-a.json target/fabric-b.json
cargo run -q --release --offline -p hix-bench --bin fabric_report -- --check target/fabric-a.json
cargo run -q --release --offline -p hix-bench --bin fabric_report -- --check BENCH_fabric.json

# Crypto-plane smoke: run the wall-clock crypto bench once (emitting to
# target/, never overwriting the committed ledger — wall-clock numbers
# are host-specific) and schema-validate both the fresh emission and the
# committed BENCH_crypto.json through the shared hix_bench::json reader.
# The bench self-checks its own emission against the same schema, so a
# row rename or a broken writer fails here, not at review time.
# (cargo bench runs the binary with CWD at the package root, so paths
# must be absolute here.)
cargo bench --offline --bench crypto -- "$PWD/target/crypto-smoke.json"
cargo bench --offline --bench crypto -- --check "$PWD/target/crypto-smoke.json"
cargo bench --offline --bench crypto -- --check "$PWD/BENCH_crypto.json"

# Table 2 re-runs the attack-scenario suite and the per-crate TCB LoC
# accounting (non-fatal here: the test suite above already gates it).
cargo run -q --release --offline -p hix-bench --bin table2_tcb 2>/dev/null || true

echo "tier-1 verify: OK"
