#!/usr/bin/env bash
# Tier-1 verify — fully hermetic: no network, no crates.io registry.
# The workspace has zero external dependencies (see crates/testkit), so
# everything below runs with --offline on a cold machine.
set -euo pipefail
cd "$(dirname "$0")/.."

build_log=$(mktemp)
trap 'rm -f "$build_log"' EXIT

cargo build --release --offline 2>&1 | tee "$build_log"
# The in-tree test/bench harness must stay warning-clean: it is part of
# every crate's verify path and is counted in the Table-2 TCB breakdown.
if grep -E 'hix-testkit.*generated [0-9]+ warning' "$build_log"; then
    echo "error: cargo build emitted warnings in hix-testkit" >&2
    exit 1
fi
# Same bar for the observability crate: it sits below every other crate
# and is threaded through all hot paths.
if grep -E 'hix-obs.*generated [0-9]+ warning' "$build_log"; then
    echo "error: cargo build emitted warnings in hix-obs" >&2
    exit 1
fi
# And for the simulation substrate, which now carries the fault-injection
# layer exercised by every recovery test.
if grep -E 'hix-sim.*generated [0-9]+ warning' "$build_log"; then
    echo "error: cargo build emitted warnings in hix-sim" >&2
    exit 1
fi

cargo test -q --offline

# Observability smoke test: trace_report exports a Perfetto trace from
# both stacks and exits non-zero on an empty trace, accounting drift, or
# a non-deterministic same-seed run.
cargo run -q --release --offline -p hix-bench --bin trace_report target/trace-report

# Fault-matrix smoke: 3 seeds x {none, light, heavy} fault profiles on
# the secure matrix workload. Exits non-zero if faulted GPU results are
# not byte-identical to the fault-free run, if a clean wire records any
# recovery work, or if a same-seed faulted rerun is not deterministic.
cargo run -q --release --offline -p hix-bench --bin fault_report

# Table 2 re-runs the attack-scenario suite and the per-crate TCB LoC
# accounting (non-fatal here: the test suite above already gates it).
cargo run -q --release --offline -p hix-bench --bin table2_tcb 2>/dev/null || true

echo "tier-1 verify: OK"
