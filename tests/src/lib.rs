//! Integration test host crate; see tests/.

#![warn(missing_docs)]
