//! Robustness fuzzing: the GPU's MMIO surface is reachable by untrusted
//! software in the baseline world, so the device model must be
//! panic-free under arbitrary register traffic and malformed command
//! submissions — errors, never crashes.
//!
//! Runs on the in-tree `hix-testkit` harness; the seed corpus in
//! `proptest_robustness.seeds` (migrated from the retired
//! `.proptest-regressions` file) is replayed before every run.

use hix_driver::rig::{standard_rig, RigOptions, GPU_BDF};
use hix_gpu::regs::bar0;
use hix_pcie::addr::Bdf;
use hix_pcie::config::BarIndex;
use hix_testkit::prop::{decode_tape, prop, Source};

const SEEDS: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/proptest_robustness.seeds");

#[derive(Debug, Clone)]
enum MmioOp {
    Write { bar: u8, offset: u64, data: Vec<u8> },
    Read { bar: u8, offset: u64, len: usize },
    Doorbell { staged: Vec<u8> },
    ConfigWrite { offset: u16, value: u32 },
}

fn mmio_op(s: &mut Source) -> MmioOp {
    match s.choice(4) {
        0 => MmioOp::Write {
            bar: s.in_range(0..2) as u8,
            offset: s.in_range(0..0x3000),
            data: s.vec_u8(1..64),
        },
        1 => MmioOp::Read {
            bar: s.in_range(0..2) as u8,
            offset: s.in_range(0..0x3000),
            len: s.usize_in(1..64),
        },
        2 => MmioOp::Doorbell { staged: s.vec_u8(0..128) },
        _ => MmioOp::ConfigWrite {
            offset: s.in_range(0..0x40) as u16,
            value: s.u32(),
        },
    }
}

#[test]
fn device_survives_arbitrary_mmio() {
    prop("device_survives_arbitrary_mmio")
        .corpus(SEEDS)
        .run(|s| {
            let ops = s.collect(1..64, mmio_op);
            let mut machine = standard_rig(RigOptions::default());
            for op in ops {
                match op {
                    MmioOp::Write { bar, offset, data } => {
                        let device = machine.device_mut(GPU_BDF).expect("gpu present");
                        device.mmio_write(BarIndex(bar), offset, &data);
                    }
                    MmioOp::Read { bar, offset, len } => {
                        let device = machine.device_mut(GPU_BDF).expect("gpu present");
                        let mut buf = vec![0u8; len];
                        device.mmio_read(BarIndex(bar), offset, &mut buf);
                    }
                    MmioOp::Doorbell { staged } => {
                        let device = machine.device_mut(GPU_BDF).expect("gpu present");
                        device.mmio_write(BarIndex(0), bar0::CMD_WINDOW, &staged);
                        device.mmio_write(
                            BarIndex(0),
                            bar0::DOORBELL,
                            &(staged.len() as u64).to_le_bytes(),
                        );
                    }
                    MmioOp::ConfigWrite { offset, value } => {
                        let _ = machine.config_write(GPU_BDF, offset, value);
                    }
                }
                // Whatever happened, the device must still quiesce.
                machine.run_device(GPU_BDF);
            }
            // And still answer with its magic afterwards.
            let device = machine.device_mut(GPU_BDF).expect("gpu present");
            let mut id = [0u8; 8];
            device.mmio_read(BarIndex(0), bar0::ID, &mut id);
            assert_eq!(u64::from_le_bytes(id), hix_gpu::regs::GPU_MAGIC);
        });
}

#[test]
fn fabric_survives_arbitrary_config_traffic() {
    prop("fabric_survives_arbitrary_config_traffic")
        .corpus(SEEDS)
        .run(|s| {
            let writes = s.collect(1..64, |s| {
                (
                    s.in_range(0..4) as u8,
                    s.in_range(0..2) as u8,
                    s.in_range(0..0x40) as u16,
                    s.u32(),
                )
            });
            let mut machine = standard_rig(RigOptions::default());
            for (bus, dev, offset, value) in writes {
                let bdf = Bdf::new(bus, dev, 0);
                let _ = machine.config_write(bdf, offset, value);
                let _ = machine.config_read(bdf, offset);
            }
            // The fabric still routes *something* deterministic (either the
            // GPU if decode survived, or nothing — never a panic).
            let _ = machine.fabric().route_mem(hix_pcie::addr::PhysAddr::new(0xc000_0000));
        });
}

#[test]
fn command_decoder_never_panics() {
    prop("command_decoder_never_panics")
        .corpus(SEEDS)
        .run(|s| {
            let bytes = s.vec_u8(0..256);
            let _ = hix_gpu::cmd::GpuCommand::decode(&bytes);
        });
}

#[test]
fn protocol_decoder_never_panics() {
    prop("protocol_decoder_never_panics")
        .corpus(SEEDS)
        .run(|s| {
            let bytes = s.vec_u8(0..256);
            let _ = hix_core::protocol::Request::decode(&bytes);
            let _ = hix_core::protocol::Response::decode(&bytes);
        });
}

#[test]
fn ocb_open_never_panics_on_garbage() {
    prop("ocb_open_never_panics_on_garbage")
        .corpus(SEEDS)
        .run(|s| {
            use hix_crypto::ocb::{Key, Nonce, Ocb};
            let bytes = s.vec_u8(0..256);
            let counter = s.u64();
            let ocb = Ocb::new(&Key::from_bytes([1u8; 16]));
            let _ = ocb.open(&Nonce::from_counter(counter), b"aad", &bytes);
        });
}

/// Draws for [`replay_window_matches_model`], shared with the
/// pinned-decode test so the corpus tape provably decodes to the
/// documented counterexample.
fn replay_window_case(s: &mut Source) -> (u64, Vec<u64>) {
    let window = 1 + s.in_range(0..128);
    let seqs = s.collect(0..64, |s| s.in_range(0..4096));
    (window, seqs)
}

/// The anti-replay window must agree with the obvious reference model:
/// a high-water mark `last`, where `seq <= last` is stale, `seq >
/// last + window` is too far ahead (desync), and anything in between
/// is fresh and advances the mark.
#[test]
fn replay_window_matches_model() {
    use hix_sim::fault::{ReplayWindow, SeqCheck};
    prop("replay_window_matches_model")
        .corpus(SEEDS)
        .run(|s| {
            let (window, seqs) = replay_window_case(s);
            let mut win = ReplayWindow::new(window);
            let mut model_last = 0u64;
            for seq in seqs {
                let expect = if seq <= model_last {
                    SeqCheck::Stale
                } else if seq > model_last + window {
                    SeqCheck::TooFar
                } else {
                    SeqCheck::Fresh
                };
                assert_eq!(win.check(seq), expect, "check({seq}) with last={model_last} window={window}");
                assert_eq!(win.accept(seq), expect, "accept must classify like check");
                if expect == SeqCheck::Fresh {
                    model_last = seq;
                }
                assert_eq!(win.last(), model_last, "only fresh sequences may advance");
            }
            win.reset();
            assert_eq!(win.last(), 0, "reset must reopen the epoch");
        });
}

/// The resequencer must release held items lowest-sequence-first and
/// refuse anything at or under the floor left by a previous release —
/// checked against a `BTreeSet` + floor reference model. Ops < 32 push
/// that sequence number; ops >= 32 pop.
#[test]
fn resequencer_matches_sorted_model() {
    use hix_sim::fault::Resequencer;
    use std::collections::BTreeSet;
    prop("resequencer_matches_sorted_model")
        .corpus(SEEDS)
        .run(|s| {
            let ops = s.collect(0..64, |s| s.in_range(0..40));
            let mut rs = Resequencer::new();
            let mut held: BTreeSet<u64> = BTreeSet::new();
            let mut floor: Option<u64> = None;
            for op in ops {
                if op < 32 {
                    let seq = op;
                    let fresh = floor.is_none_or(|f| seq > f) && !held.contains(&seq);
                    assert_eq!(rs.push(seq, seq), fresh, "push({seq}) with floor {floor:?}");
                    if fresh {
                        held.insert(seq);
                    }
                } else {
                    let expect = held.iter().next().copied();
                    assert_eq!(rs.peek().map(|(q, _)| q), expect, "peek must see the minimum");
                    assert_eq!(rs.pop().map(|(q, _)| q), expect, "pop must release the minimum");
                    if let Some(q) = expect {
                        held.remove(&q);
                        floor = Some(q);
                    }
                }
                assert_eq!(rs.len(), held.len());
                assert_eq!(rs.is_empty(), held.is_empty());
            }
        });
}

/// The retransmit backoff must follow the closed form `min(base * 2^i,
/// cap)` exactly: monotone non-decreasing, never under `base`, never
/// over `cap`, and `reset()` restarts the schedule at `base`.
#[test]
fn backoff_schedule_is_monotone_and_capped() {
    use hix_sim::fault::Backoff;
    use hix_sim::Nanos;
    prop("backoff_schedule_is_monotone_and_capped")
        .corpus(SEEDS)
        .run(|s| {
            let base_ns = 1 + s.in_range(0..1_000_000);
            let cap_ns = base_ns * (1 + s.in_range(0..256));
            let steps = s.in_range(1..64);
            let mut b = Backoff::new(Nanos::from_nanos(base_ns), Nanos::from_nanos(cap_ns));
            let mut prev = 0u128;
            for i in 0..steps {
                let d = b.next_delay().as_nanos() as u128;
                let expect = ((base_ns as u128) << i).min(cap_ns as u128);
                assert_eq!(d, expect, "delay {i} with base {base_ns} cap {cap_ns}");
                assert!(d >= prev, "schedule must be monotone");
                assert!(d >= base_ns as u128 && d <= cap_ns as u128);
                prev = d;
            }
            b.reset();
            assert_eq!(
                b.next_delay().as_nanos(),
                base_ns,
                "reset must restart the schedule at base"
            );
        });
}

/// The migrated corpus entry must keep decoding to the counterexample
/// the retired proptest regression file recorded: exactly one
/// `Doorbell` op with these 51 staged bytes. If the tape encoding ever
/// drifts, this fails loudly instead of silently replaying garbage.
#[test]
fn migrated_regression_seed_decodes_to_original_counterexample() {
    let text = std::fs::read_to_string(SEEDS).expect("seeds file present");
    let line = text
        .lines()
        .find(|l| l.trim_start().starts_with("device_survives_arbitrary_mmio"))
        .expect("migrated entry present");
    let hex = line.split_whitespace().nth(1).unwrap();
    let tape = hix_testkit::prop::decode_hex(hex).unwrap();
    let ops = decode_tape(&tape, |s| s.collect(1..64, mmio_op));
    assert_eq!(ops.len(), 1);
    let MmioOp::Doorbell { staged } = &ops[0] else {
        panic!("expected a Doorbell op, got {:?}", ops[0]);
    };
    let original: &[u8] = &[
        12, 220, 192, 56, 123, 180, 193, 49, 130, 120, 16, 42, 233, 167, 207, 230, 216, 241,
        75, 189, 200, 74, 132, 153, 160, 129, 188, 145, 131, 73, 213, 243, 209, 9, 103, 89,
        62, 72, 20, 4, 2, 8, 105, 83, 219, 212, 11, 77, 137, 119, 238,
    ];
    assert_eq!(staged, original);
}

/// Same drift-guard for the fault-machinery corpus: the pinned
/// replay-window tape must decode to the documented case — a 64-deep
/// window probed with `[64, 129, 128]` (edge-of-window fresh, one past
/// the horizon, then the horizon itself).
#[test]
fn pinned_replay_window_seed_decodes_to_documented_case() {
    let text = std::fs::read_to_string(SEEDS).expect("seeds file present");
    let line = text
        .lines()
        .find(|l| l.trim_start().starts_with("replay_window_matches_model"))
        .expect("pinned replay-window entry present");
    let hex = line.split_whitespace().nth(1).unwrap();
    let tape = hix_testkit::prop::decode_hex(hex).unwrap();
    let (window, seqs) = decode_tape(&tape, replay_window_case);
    assert_eq!(window, 64);
    assert_eq!(seqs, [64, 129, 128]);
}
