//! Robustness fuzzing: the GPU's MMIO surface is reachable by untrusted
//! software in the baseline world, so the device model must be
//! panic-free under arbitrary register traffic and malformed command
//! submissions — errors, never crashes.

use hix_driver::rig::{standard_rig, RigOptions, GPU_BDF};
use hix_gpu::regs::bar0;
use hix_pcie::config::BarIndex;
use hix_pcie::addr::Bdf;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum MmioOp {
    Write { bar: u8, offset: u64, data: Vec<u8> },
    Read { bar: u8, offset: u64, len: usize },
    Doorbell { staged: Vec<u8> },
    ConfigWrite { offset: u16, value: u32 },
}

fn mmio_op() -> impl Strategy<Value = MmioOp> {
    prop_oneof![
        (0u8..2, 0u64..0x3000, prop::collection::vec(any::<u8>(), 1..64))
            .prop_map(|(bar, offset, data)| MmioOp::Write { bar, offset, data }),
        (0u8..2, 0u64..0x3000, 1usize..64)
            .prop_map(|(bar, offset, len)| MmioOp::Read { bar, offset, len }),
        prop::collection::vec(any::<u8>(), 0..128)
            .prop_map(|staged| MmioOp::Doorbell { staged }),
        (0u16..0x40, any::<u32>())
            .prop_map(|(offset, value)| MmioOp::ConfigWrite { offset, value }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn device_survives_arbitrary_mmio(ops in prop::collection::vec(mmio_op(), 1..64)) {
        let mut machine = standard_rig(RigOptions::default());
        for op in ops {
            match op {
                MmioOp::Write { bar, offset, data } => {
                    let device = machine.device_mut(GPU_BDF).expect("gpu present");
                    device.mmio_write(BarIndex(bar), offset, &data);
                }
                MmioOp::Read { bar, offset, len } => {
                    let device = machine.device_mut(GPU_BDF).expect("gpu present");
                    let mut buf = vec![0u8; len];
                    device.mmio_read(BarIndex(bar), offset, &mut buf);
                }
                MmioOp::Doorbell { staged } => {
                    let device = machine.device_mut(GPU_BDF).expect("gpu present");
                    device.mmio_write(BarIndex(0), bar0::CMD_WINDOW, &staged);
                    device.mmio_write(
                        BarIndex(0),
                        bar0::DOORBELL,
                        &(staged.len() as u64).to_le_bytes(),
                    );
                }
                MmioOp::ConfigWrite { offset, value } => {
                    let _ = machine.config_write(GPU_BDF, offset, value);
                }
            }
            // Whatever happened, the device must still quiesce.
            machine.run_device(GPU_BDF);
        }
        // And still answer with its magic afterwards.
        let device = machine.device_mut(GPU_BDF).expect("gpu present");
        let mut id = [0u8; 8];
        device.mmio_read(BarIndex(0), bar0::ID, &mut id);
        prop_assert_eq!(u64::from_le_bytes(id), hix_gpu::regs::GPU_MAGIC);
    }

    #[test]
    fn fabric_survives_arbitrary_config_traffic(
        writes in prop::collection::vec((0u8..4, 0u8..2, 0u16..0x40, any::<u32>()), 1..64),
    ) {
        let mut machine = standard_rig(RigOptions::default());
        for (bus, dev, offset, value) in writes {
            let bdf = Bdf::new(bus, dev, 0);
            let _ = machine.config_write(bdf, offset, value);
            let _ = machine.config_read(bdf, offset);
        }
        // The fabric still routes *something* deterministic (either the
        // GPU if decode survived, or nothing — never a panic).
        let _ = machine.fabric().route_mem(hix_pcie::addr::PhysAddr::new(0xc000_0000));
    }

    #[test]
    fn command_decoder_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = hix_gpu::cmd::GpuCommand::decode(&bytes);
    }

    #[test]
    fn protocol_decoder_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = hix_core::protocol::Request::decode(&bytes);
        let _ = hix_core::protocol::Response::decode(&bytes);
    }

    #[test]
    fn ocb_open_never_panics_on_garbage(
        bytes in prop::collection::vec(any::<u8>(), 0..256),
        counter in any::<u64>(),
    ) {
        use hix_crypto::ocb::{Key, Nonce, Ocb};
        let ocb = Ocb::new(&Key::from_bytes([1u8; 16]));
        let _ = ocb.open(&Nonce::from_counter(counter), b"aad", &bytes);
    }
}
