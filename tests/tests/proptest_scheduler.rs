//! Pinned-tape property suite for the weighted-fair scheduler
//! ([`hix_core::sched::FairQueue`]) and the sealed-state parking path.
//!
//! Five properties, matching the invariants the scheduler's module docs
//! promise:
//!
//! 1. a session's deficit (virtual lead over the floor) is never
//!    negative and the floor is monotone, under arbitrary op tapes;
//! 2. the `O(log n)` heap-based queue serves sessions in exactly the
//!    order of a naive linear-scan reference model;
//! 3. backlogged sessions' normalized service stays within one quantum
//!    of each other — weights are respected at slice granularity;
//! 4. parking a live session (seal out of the resident set) and
//!    resuming it round-trips device state byte-identically, through
//!    fresh keys and a journal replay;
//! 5. the per-session metrics cardinality gate never loses counts:
//!    for arbitrary populations straddling the gate, named counters
//!    plus the overflow bucket tile the aggregate totals exactly.
//!
//! Runs on the in-tree `hix-testkit` harness.

use hix_core::multiuser::{
    run_scaled, seeded_session_faults, FaultProfile, Mode, SchedulerConfig, SessionSpec, TaskSpec,
    PER_SESSION_METRICS_MAX,
};
use hix_core::sched::{FairQueue, SlotId, VT_SCALE};
use hix_core::{GpuEnclave, GpuEnclaveOptions, HixSession};
use hix_driver::rig::{standard_rig, RigOptions};
use hix_obs::Metrics;
use hix_sim::{CostModel, Nanos, Payload};
use hix_testkit::prop::{prop, Source};

const SEEDS: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/proptest_scheduler.seeds");

/// A random population: 1..12 sessions with weights in [1, 64].
fn population(s: &mut Source, q: &mut FairQueue) -> Vec<SlotId> {
    let n = s.usize_in(1..12);
    (0..n).map(|_| q.insert(s.in_range(1..65) as u32)).collect()
}

#[test]
fn deficit_is_never_negative_and_floor_is_monotone() {
    prop("deficit_is_never_negative_and_floor_is_monotone")
        .corpus(SEEDS)
        .run(|s| {
            let mut q = FairQueue::new();
            let ids = population(s, &mut q);
            let mut floor = 0u128;
            for _ in 0..s.usize_in(1..128) {
                match s.choice(3) {
                    0 => q.activate(ids[s.index(ids.len())]),
                    1 => {
                        if let Some(id) = q.pick() {
                            q.charge(id, Nanos::from_nanos(s.in_range(0..10_000_000)));
                            if s.bool() {
                                q.activate(id);
                            }
                        }
                    }
                    // A session that went idle without being charged
                    // (parked mid-queue) and comes back later.
                    _ => {
                        if let Some(id) = q.pick() {
                            q.activate(id);
                        }
                    }
                }
                assert!(q.vfloor() >= floor, "virtual floor regressed");
                floor = q.vfloor();
                for &id in &ids {
                    // `deficit` subtracts with `checked_sub` for active
                    // sessions: a negative deficit panics right here.
                    let _ = q.deficit(id);
                    if q.is_active(id) {
                        assert!(q.vtime(id) >= q.vfloor());
                    }
                }
            }
        });
}

/// The obviously-correct reference: a linear scan picking the active
/// session with the smallest `(vtime, index)`, with the same activation
/// clamp and floor rule the heap implementation promises.
struct RefQueue {
    slots: Vec<(u128, u32, bool)>, // (vtime, weight, active)
    floor: u128,
}

impl RefQueue {
    fn new() -> Self {
        RefQueue { slots: Vec::new(), floor: 0 }
    }
    fn insert(&mut self, weight: u32) -> usize {
        self.slots.push((self.floor, weight, false));
        self.slots.len() - 1
    }
    fn activate(&mut self, id: usize) {
        let s = &mut self.slots[id];
        if !s.2 {
            s.0 = s.0.max(self.floor);
            s.2 = true;
        }
    }
    fn pick(&mut self) -> Option<usize> {
        let id = self
            .slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.2)
            .min_by_key(|(i, s)| (s.0, *i))
            .map(|(i, _)| i)?;
        self.slots[id].2 = false;
        self.floor = self.floor.max(self.slots[id].0);
        Some(id)
    }
    fn charge(&mut self, id: usize, service: Nanos) {
        let s = &mut self.slots[id];
        s.0 += service.as_nanos() as u128 * VT_SCALE / s.1 as u128;
    }
}

#[test]
fn service_order_matches_the_reference_model() {
    prop("service_order_matches_the_reference_model")
        .corpus(SEEDS)
        .run(|s| {
            let mut q = FairQueue::new();
            let mut r = RefQueue::new();
            let n = s.usize_in(1..12);
            let ids: Vec<SlotId> = (0..n)
                .map(|_| {
                    let w = s.in_range(1..65) as u32;
                    let id = q.insert(w);
                    assert_eq!(r.insert(w), id);
                    id
                })
                .collect();
            for _ in 0..s.usize_in(1..128) {
                match s.choice(2) {
                    0 => {
                        let id = ids[s.index(n)];
                        q.activate(id);
                        r.activate(id);
                    }
                    _ => {
                        let got = q.pick();
                        let want = r.pick();
                        assert_eq!(got, want, "heap and reference disagree on the pick");
                        if let Some(id) = got {
                            let slice = Nanos::from_nanos(s.in_range(0..10_000_000));
                            q.charge(id, slice);
                            r.charge(id, slice);
                            q.activate(id);
                            r.activate(id);
                        }
                    }
                }
                assert_eq!(q.vfloor(), r.floor, "virtual floors diverged");
                for &id in &ids {
                    assert_eq!(q.vtime(id), r.slots[id].0, "vtime diverged for slot {id}");
                }
            }
        });
}

#[test]
fn backlogged_weights_are_respected_within_one_quantum() {
    prop("backlogged_weights_are_respected_within_one_quantum")
        .corpus(SEEDS)
        .run(|s| {
            let mut q = FairQueue::new();
            let n = s.usize_in(2..10);
            let ids: Vec<SlotId> = (0..n).map(|_| q.insert(s.in_range(1..65) as u32)).collect();
            let quantum = Nanos::from_nanos(s.in_range(1..5_000_001));
            for &id in &ids {
                q.activate(id);
            }
            for _ in 0..s.usize_in(n..512) {
                let id = q.pick().expect("everyone is backlogged");
                q.charge(id, quantum);
                q.activate(id);
            }
            // Every charge advances a vtime by at most
            // quantum * VT_SCALE / min_weight, and SFQ always serves the
            // minimum — so the backlogged set's normalized service
            // (vtime) never spreads wider than one such slice. In
            // service terms: no session is more than one quantum of the
            // lightest peer ahead of any other, scaled by weight.
            let min_w = ids.iter().map(|&id| q.weight(id)).min().unwrap() as u128;
            let bound = quantum.as_nanos() as u128 * VT_SCALE / min_w;
            let vts: Vec<u128> = ids.iter().map(|&id| q.vtime(id)).collect();
            let spread = vts.iter().max().unwrap() - vts.iter().min().unwrap();
            assert!(
                spread <= bound,
                "normalized service spread {spread} exceeds one quantum bound {bound} \
                 (weights {:?})",
                ids.iter().map(|&id| q.weight(id)).collect::<Vec<_>>()
            );
        });
}

#[test]
fn metrics_cardinality_gate_loses_no_counts() {
    prop("metrics_cardinality_gate_loses_no_counts")
        .cases(32)
        .corpus(SEEDS)
        .run(|s| {
            // Populations on both sides of the gate, biased to straddle
            // it: the overflow bucket must tile totals exactly whenever
            // it exists and never be minted when it doesn't.
            let users = if s.bool() {
                PER_SESSION_METRICS_MAX + s.usize_in(1..48)
            } else {
                s.usize_in(1..PER_SESSION_METRICS_MAX + 1)
            };
            let model = CostModel::paper();
            let profile = match s.choice(3) {
                0 => FaultProfile::None,
                1 => FaultProfile::Light,
                _ => FaultProfile::Heavy,
            };
            let faults = seeded_session_faults(s.u64(), users, profile);
            let sessions: Vec<SessionSpec> = faults
                .into_iter()
                .map(|f| {
                    let mut spec = SessionSpec::new(TaskSpec {
                        name: "prop".into(),
                        htod: s.in_range(1..(8 << 20)),
                        dtoh: s.in_range(1..(4 << 20)),
                        kernel_time: Nanos::from_micros(s.in_range(10..5_000)),
                        launches: s.in_range(1..4),
                    });
                    spec.weight = s.in_range(1..65) as u32;
                    spec.faults = f;
                    spec
                })
                .collect();
            let mut cfg = SchedulerConfig::new(&model);
            if s.bool() {
                cfg.max_resident = s.usize_in(1..users + 1);
            }
            let m = Metrics::new();
            let out = run_scaled(&model, &sessions, Mode::Hix, &cfg, Some(&m));

            let gated = users.min(PER_SESSION_METRICS_MAX);
            let named_service: u64 =
                (0..gated).map(|i| m.counter(&format!("sched.s{i}.service_ns"))).sum();
            let named_wait: u64 =
                (0..gated).map(|i| m.counter(&format!("sched.s{i}.wait_ns"))).sum();
            assert_eq!(
                named_service + m.counter("sched.overflow.service_ns"),
                m.counter("sched.service_ns"),
                "named + overflow service must tile the aggregate"
            );
            assert_eq!(
                named_wait + m.counter("sched.overflow.wait_ns"),
                out.gpu_wait.iter().map(|w| w.as_nanos()).sum::<u64>(),
                "named + overflow wait must tile the per-tenant outcome"
            );
            assert_eq!(
                m.counter("sched.overflow.sessions"),
                users.saturating_sub(PER_SESSION_METRICS_MAX) as u64,
                "overflow population is exactly the tail past the gate"
            );
            assert_eq!(
                m.counter(&format!("sched.s{}.service_ns", PER_SESSION_METRICS_MAX)),
                0,
                "no per-session counter is minted past the gate"
            );
        });
}

#[test]
fn park_then_unseal_round_trips_byte_identical() {
    prop("park_then_unseal_round_trips_byte_identical")
        .cases(12)
        .corpus(SEEDS)
        .run(|s| {
            let mut m = standard_rig(RigOptions::default());
            let mut enclave = GpuEnclave::launch(&mut m, GpuEnclaveOptions::default())
                .expect("enclave launches");
            let mut sess = HixSession::connect(&mut m, &mut enclave).expect("session");
            let a = sess.malloc(&mut m, &mut enclave, 8192).expect("malloc");
            let data = s.vec_u8(1..4096);
            sess.memcpy_htod(&mut m, &mut enclave, a, &Payload::from_bytes(data.clone()))
                .expect("htod");
            let before = sess
                .memcpy_dtoh(&mut m, &mut enclave, a, data.len() as u64)
                .expect("dtoh before parking");
            assert_eq!(before.bytes(), &data[..]);

            let id = sess.id();
            enclave.park_session(&mut m, id).expect("parks");
            assert!(enclave.is_parked(id), "session must be in the parked set");
            assert_eq!(enclave.parked_count(), 1);

            // Waking the user transparently unseals the parked record,
            // re-keys, and replays the journal (parking never resumes
            // device state — it rebuilds it).
            let reestablished = sess.resume(&mut m, &mut enclave).expect("resume");
            assert!(reestablished, "a parked session resumes via re-establishment");
            assert!(!enclave.is_parked(id));
            assert!(sess.epoch() > 0, "re-establishment mints fresh keys");

            let after = sess
                .memcpy_dtoh(&mut m, &mut enclave, a, data.len() as u64)
                .expect("dtoh after unseal");
            assert_eq!(
                before.bytes(),
                after.bytes(),
                "park/unseal round-trip must be byte-identical"
            );
        });
}
