//! Property-based tests over the platform substrate: page tables + TLB
//! coherence, sparse RAM, VRAM, and the cost model's monotonicity — on
//! the in-tree `hix-testkit` harness.

use hix_pcie::addr::PhysAddr;
use hix_platform::mem::{Ram, PAGE_SIZE};
use hix_platform::mmu::{PageTable, Pte, Tlb};
use hix_platform::VirtAddr;
use hix_sim::{CostModel, Nanos};
use hix_testkit::prop::{prop, Source};

#[derive(Debug, Clone)]
enum MmuOp {
    Map { vpn: u64, ppn: u64, writable: bool },
    Unmap { vpn: u64 },
}

fn mmu_op(s: &mut Source) -> MmuOp {
    match s.choice(2) {
        0 => MmuOp::Map {
            vpn: s.in_range(0..32),
            ppn: s.in_range(0..64),
            writable: s.bool(),
        },
        _ => MmuOp::Unmap { vpn: s.in_range(0..32) },
    }
}

#[test]
fn page_table_matches_reference_model() {
    prop("page_table_matches_reference_model").run(|s| {
        let ops = s.collect(0..64, mmu_op);
        let mut pt = PageTable::new();
        let mut reference = std::collections::BTreeMap::new();
        for op in ops {
            match op {
                MmuOp::Map { vpn, ppn, writable } => {
                    pt.map(
                        VirtAddr::new(vpn * PAGE_SIZE),
                        PhysAddr::new(ppn * PAGE_SIZE),
                        writable,
                    );
                    reference.insert(vpn, (ppn, writable));
                }
                MmuOp::Unmap { vpn } => {
                    pt.unmap(VirtAddr::new(vpn * PAGE_SIZE));
                    reference.remove(&vpn);
                }
            }
        }
        for vpn in 0..32u64 {
            let got = pt.walk(VirtAddr::new(vpn * PAGE_SIZE + 123));
            let want = reference.get(&vpn).map(|&(ppn, writable)| Pte { ppn, writable });
            assert_eq!(got, want, "vpn {vpn}");
        }
    });
}

#[test]
fn tlb_never_contradicts_inserts() {
    prop("tlb_never_contradicts_inserts").run(|s| {
        // Whatever the eviction pattern, a hit must return the most
        // recently inserted translation for that page.
        let inserts = s.collect(1..128, |s| (s.in_range(0..16), s.in_range(0..64)));
        let capacity = s.usize_in(1..16);
        let mut tlb = Tlb::new(capacity);
        let mut last = std::collections::BTreeMap::new();
        for (vpn, ppn) in inserts {
            tlb.insert(VirtAddr::new(vpn * PAGE_SIZE), Pte { ppn, writable: true });
            last.insert(vpn, ppn);
        }
        for (vpn, ppn) in last {
            if let Some(pte) = tlb.lookup(VirtAddr::new(vpn * PAGE_SIZE)) {
                assert_eq!(pte.ppn, ppn, "stale TLB entry for vpn {vpn}");
            }
        }
    });
}

#[test]
fn ram_rw_roundtrip() {
    prop("ram_rw_roundtrip").run(|s| {
        let offset = s.in_range(0..1 << 20);
        let data = s.vec_u8(1..256);
        let mut ram = Ram::new();
        let base = PhysAddr::new(0x50_0000 + offset);
        ram.write(base, &data);
        let mut back = vec![0u8; data.len()];
        ram.read(base, &mut back);
        assert_eq!(back, data);
    });
}

#[test]
fn vram_rw_roundtrip() {
    prop("vram_rw_roundtrip").run(|s| {
        let offset = s.in_range(0..1 << 18);
        let data = s.vec_u8(1..256);
        let mut vram = hix_gpu::vram::Vram::new(1 << 20);
        vram.write(offset.min((1 << 20) - 256), &data);
        let mut back = vec![0u8; data.len()];
        vram.read(offset.min((1 << 20) - 256), &mut back);
        assert_eq!(back, data);
    });
}

#[test]
fn pipelined_transfer_bounds() {
    prop("pipelined_transfer_bounds").run(|s| {
        // The pipelined duration is at least the slowest stage and at
        // most the serial sum.
        let bytes = s.in_range(1..512 << 20);
        let m = CostModel::paper();
        let t = m.pipelined_transfer(bytes, m.enclave_crypto_bw, m.pcie_bw, m.dma_setup);
        let crypto = m.enclave_crypt(bytes);
        let chunks = bytes.div_ceil(m.pipeline_chunk);
        let wire = Nanos::for_throughput(bytes, m.pcie_bw) + m.dma_setup * chunks;
        assert!(t >= crypto.max(wire));
        assert!(t <= crypto + wire);
    });
}

#[test]
fn transfer_costs_are_monotonic() {
    prop("transfer_costs_are_monotonic").run(|s| {
        let a = s.in_range(1..256 << 20);
        let b = s.in_range(1..256 << 20);
        let m = CostModel::paper();
        let (lo, hi) = (a.min(b), a.max(b));
        assert!(m.hix_htod(lo) <= m.hix_htod(hi));
        assert!(m.hix_dtoh(lo) <= m.hix_dtoh(hi));
        assert!(m.pcie_transfer(lo) <= m.pcie_transfer(hi));
    });
}

#[test]
fn single_copy_beats_naive_everywhere() {
    prop("single_copy_beats_naive_everywhere").run(|s| {
        let bytes = s.in_range(1 << 12..512 << 20);
        let m = CostModel::paper();
        assert!(m.hix_htod(bytes) < m.naive_htod(bytes));
    });
}

#[test]
fn frame_allocator_never_hands_out_epc_or_duplicates() {
    let mut ram = Ram::new();
    let mut seen = std::collections::HashSet::new();
    for _ in 0..10_000 {
        let f = ram.alloc_frames(1)[0];
        assert!(!Ram::is_epc(f), "EPC frame leaked into general pool: {f}");
        assert!(seen.insert(f.value()), "duplicate frame {f}");
    }
    // Freed frames may be reused — but only after being freed.
    let some: Vec<PhysAddr> = seen.iter().take(16).map(|&v| PhysAddr::new(v)).collect();
    ram.free_frames(&some);
    for _ in 0..16 {
        let f = ram.alloc_frames(1)[0];
        assert!(!Ram::is_epc(f));
    }
}
