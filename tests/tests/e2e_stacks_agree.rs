//! End-to-end: every workload runs functionally on both stacks — the
//! insecure Gdev baseline and the full HIX stack (enclave, attestation,
//! sealed transfers, in-GPU crypto) — and each verifies its GPU results
//! against its CPU reference. Also checks the coarse timing invariants
//! the figures rely on.

use hix_core::{GpuEnclave, GpuEnclaveOptions, HixSession};
use hix_driver::rig::{standard_rig, RigOptions, GPU_BDF};
use hix_driver::Gdev;
use hix_platform::Machine;
use hix_sim::Nanos;
use hix_workloads::exec::{GdevExec, HixExec};
use hix_workloads::matrix::{MatrixAdd, MatrixMul};
use hix_workloads::{all_kernels, rodinia_suite, Workload};

fn rig() -> Machine {
    standard_rig(RigOptions {
        kernels: all_kernels(),
        ..RigOptions::default()
    })
}

fn run_both(w: &dyn Workload) -> (Nanos, Nanos) {
    // Gdev.
    let mut m = rig();
    let pid = m.create_process();
    let mut gdev = Gdev::open(&mut m, pid, GPU_BDF).expect("open");
    let t0 = m.clock().now();
    let g_stats = w
        .run(&mut m, &mut GdevExec::new(&mut gdev), w.test_size())
        .unwrap_or_else(|e| panic!("{} on gdev: {e}", w.name()));
    let gdev_time = m.clock().now() - t0;

    // HIX.
    let mut m = rig();
    let mut enclave = GpuEnclave::launch(&mut m, GpuEnclaveOptions::default()).expect("enclave");
    let mut session = HixSession::connect(&mut m, &mut enclave).expect("session");
    let t0 = m.clock().now();
    let h_stats = w
        .run(
            &mut m,
            &mut HixExec::new(&mut session, &mut enclave),
            w.test_size(),
        )
        .unwrap_or_else(|e| panic!("{} on hix: {e}", w.name()));
    let hix_time = m.clock().now() - t0;

    // The two stacks executed the same logical workload.
    assert_eq!(g_stats.htod_bytes, h_stats.htod_bytes, "{}", w.name());
    assert_eq!(g_stats.dtoh_bytes, h_stats.dtoh_bytes, "{}", w.name());
    assert_eq!(g_stats.launches, h_stats.launches, "{}", w.name());
    (gdev_time, hix_time)
}

#[test]
fn all_rodinia_apps_agree_across_stacks() {
    for w in rodinia_suite() {
        let (g, h) = run_both(w.as_ref());
        assert!(g > Nanos::ZERO && h > Nanos::ZERO, "{}", w.name());
    }
}

#[test]
fn matrix_microbenchmarks_agree_across_stacks() {
    run_both(&MatrixAdd);
    run_both(&MatrixMul);
}

#[test]
fn secure_stack_never_free_for_transfer_heavy_work() {
    // At test scale with the real clock, a transfer-dominated workload
    // must cost more under HIX than the (post-init) Gdev baseline:
    // compare times *excluding* task init by subtracting the init gap.
    let model = hix_sim::CostModel::paper();
    let init_gap = model.task_init_gdev - model.task_init_hix;
    let (g, h) = run_both(&MatrixAdd);
    assert!(
        h + init_gap > g,
        "HIX ({h}) + init gap ({init_gap}) must exceed Gdev ({g})"
    );
}
