//! The multi-GPU enclave fabric: per-shard trust establishment over a
//! switched topology, topology-aware placement, shard-local TDR
//! containment (one GPU's secure reset never stalls a peer shard), and
//! cross-shard migration of parked sessions.

use hix_core::fabric::{run_fabric_scaled, Fabric, FabricOptions};
use hix_core::multiuser::{SchedulerConfig, SessionSpec, TaskSpec};
use hix_driver::rig::{fabric_rig, RigOptions};
use hix_sim::fault::{fabric_fault_plans, FabricProfile};
use hix_sim::{CostModel, Nanos, Payload};

fn pattern(tag: u8) -> Vec<u8> {
    (0..4096u32).map(|i| (i.wrapping_mul(13) as u8) ^ tag).collect()
}

#[test]
fn fabric_launches_one_shard_per_gpu_and_verifies_every_path() {
    let (mut m, topo) = fabric_rig(RigOptions::default(), 4, 2);
    let fabric = Fabric::launch(&mut m, &topo, FabricOptions::default()).expect("fabric");
    assert_eq!(fabric.shard_count(), 4);
    assert!(fabric.verify_all_paths(&m), "every routing path verifies");
    for i in 0..4 {
        assert_eq!(fabric.shard(i).bdf(), topo.gpus[i].bdf);
        assert_eq!(fabric.switch_of(i), topo.gpus[i].switch);
        assert!(
            m.hix_state().gecs(topo.gpus[i].bdf).is_some(),
            "shard {i} owns its GPU"
        );
    }
    // Per-GPU BIOS pinning is real: all four digests differ pairwise.
    for a in 0..4 {
        for b in a + 1..4 {
            assert_ne!(
                fabric.shard(a).bios_digest(),
                fabric.shard(b).bios_digest(),
                "shards {a}/{b} share a BIOS digest"
            );
        }
    }
}

#[test]
fn placement_spreads_across_switches_before_doubling_up() {
    let (mut m, topo) = fabric_rig(RigOptions::default(), 4, 2);
    let mut fabric = Fabric::launch(&mut m, &topo, FabricOptions::default()).expect("fabric");
    let mut placed = Vec::new();
    for tag in [b"t0".as_slice(), b"t1", b"t2", b"t3"] {
        let (sid, _session) = fabric.connect(&mut m, 1 << 20, tag).expect("connect");
        placed.push(fabric.shard_of(sid).unwrap());
    }
    // Least-loaded, tie-broken by switch load: the second tenant jumps
    // to the other switch, not to shard 0's neighbor.
    assert_eq!(placed, vec![0, 2, 1, 3]);
    assert_eq!(m.trace().metrics().counter("fabric.placements"), 4);
}

#[test]
fn one_shard_secure_reset_is_contained_and_peers_keep_serving() {
    let (mut m, topo) = fabric_rig(RigOptions::default(), 2, 2);
    // The storm tenant is a victim of injected faults, not an abuser:
    // keep it off the eviction ladder so it can recover repeatedly.
    let mut fabric = Fabric::launch(
        &mut m,
        &topo,
        FabricOptions {
            evict_after: u32::MAX,
            ..FabricOptions::default()
        },
    )
    .expect("fabric");

    // One tenant per shard; each plants its own pattern.
    let (peer_sid, mut peer) = fabric.connect(&mut m, 1 << 20, b"peer").expect("peer");
    let (storm_sid, mut storm) = fabric.connect(&mut m, 1 << 20, b"storm").expect("storm");
    let peer_shard = fabric.shard_of(peer_sid).unwrap();
    let storm_shard = fabric.shard_of(storm_sid).unwrap();
    assert_ne!(peer_shard, storm_shard, "placement spread the tenants");

    let peer_data = pattern(0xA5);
    let storm_data = pattern(0x3C);
    let peer_buf = peer.malloc(&mut m, fabric.shard_mut(peer_shard), 4096).unwrap();
    peer.memcpy_htod(
        &mut m,
        fabric.shard_mut(peer_shard),
        peer_buf,
        &Payload::from_bytes(peer_data.clone()),
    )
    .unwrap();
    let storm_a = storm.malloc(&mut m, fabric.shard_mut(storm_shard), 4096).unwrap();
    storm
        .memcpy_htod(
            &mut m,
            fabric.shard_mut(storm_shard),
            storm_a,
            &Payload::from_bytes(storm_data.clone()),
        )
        .unwrap();

    // Storm exactly the storm shard's device; the peer's device has no
    // plan at all.
    let plans = fabric_fault_plans(
        0xFAB_0001,
        &[topo.gpus[0].switch, topo.gpus[1].switch],
        FabricProfile::ShardStorm,
    );
    assert!(plans[peer_shard].is_none() || peer_shard != storm_shard);
    for (i, plan) in plans.into_iter().enumerate() {
        m.set_device_fault_plan(topo.gpus[i].bdf, plan);
    }

    // Drive the storm tenant (with unjournaled reads, so recovery
    // replay stays short) until the watchdog escalates to a full
    // secure reset of its shard.
    let mut ops = 0;
    while m.trace().metrics().counter("watchdog.resets") == 0 {
        storm
            .memcpy_dtoh(&mut m, fabric.shard_mut(storm_shard), storm_a, 4096)
            .expect("storm dtoh (recovers transparently)");
        ops += 1;
        assert!(ops < 300, "the shard storm never escalated to a reset");
    }
    for g in &topo.gpus {
        m.set_device_fault_plan(g.bdf, None);
    }

    // Containment: the reset touched no peer-shard session.
    assert_eq!(
        fabric.reset_blast_radius(&m, storm_shard),
        0,
        "a shard-local secure reset must not stale any peer session"
    );
    assert_eq!(m.trace().metrics().counter("fabric.reset_blast_radius"), 0);

    // The peer keeps serving — and its data is byte-identical.
    let peer_back = peer
        .memcpy_dtoh(&mut m, fabric.shard_mut(peer_shard), peer_buf, 4096)
        .expect("peer dtoh after the reset");
    assert_eq!(peer_back.bytes(), &peer_data[..]);
    // The storm tenant recovered on its own shard via journal replay.
    let storm_back = storm
        .memcpy_dtoh(&mut m, fabric.shard_mut(storm_shard), storm_a, 4096)
        .expect("storm dtoh");
    assert_eq!(storm_back.bytes(), &storm_data[..]);
    assert!(storm.epoch() > 0, "the storm tenant re-keyed through recovery");

    // The lockdown chain held throughout for both shards.
    assert!(fabric.verify_all_paths(&m));
}

#[test]
fn work_stealing_plans_move_parked_sessions_toward_idle_shards() {
    let (mut m, topo) = fabric_rig(RigOptions::default(), 2, 1);
    let mut fabric = Fabric::launch(
        &mut m,
        &topo,
        FabricOptions {
            max_resident: 2,
            ..FabricOptions::default()
        },
    )
    .expect("fabric");

    // Load shard 0 with three tenants (one gets parked by admission),
    // then drain shard 1 so the imbalance is 3 vs 0.
    let mut sids = Vec::new();
    for tag in [b"a".as_slice(), b"b", b"c", b"d"] {
        let (sid, session) = fabric.connect(&mut m, 1 << 20, tag).expect("connect");
        sids.push((sid, session));
    }
    // Placement alternates 0,1,0,1; close both shard-1 tenants.
    let mut on_shard1: Vec<_> = sids
        .iter()
        .enumerate()
        .filter(|(_, (sid, _))| fabric.shard_of(*sid) == Some(1))
        .map(|(i, _)| i)
        .collect();
    on_shard1.reverse();
    assert_eq!(on_shard1.len(), 2);
    for i in on_shard1 {
        let (sid, session) = sids.remove(i);
        let enclave = fabric.enclave_for(sid).expect("placed");
        session.close(&mut m, enclave).expect("close");
        fabric.forget(sid);
    }
    // Park one of the remaining shard-0 tenants to make it stealable.
    fabric.park(&mut m, sids[0].0).expect("park");

    let steals = fabric.plan_steals();
    assert_eq!(
        steals,
        vec![(sids[0].0, 1)],
        "the parked session moves to the idle shard"
    );
    let (sid, ref mut session) = sids[0];
    fabric
        .migrate_session(&mut m, sid, session, 1)
        .expect("work-stealing migration");
    assert_eq!(fabric.shard_of(sid), Some(1));
    assert_eq!(m.trace().metrics().counter("fabric.migrations"), 1);
    assert!(
        fabric.plan_steals().is_empty(),
        "one move balances 2-vs-1; no further steals"
    );
    // The stolen session serves on its new shard after re-establishment.
    let resumed = session
        .resume(&mut m, fabric.shard_mut(1))
        .expect("resume on the stealing shard");
    assert!(resumed, "migration re-establishes with fresh keys");
}

#[test]
fn model_fabric_peers_are_bit_identical_with_and_without_a_reset() {
    let model = CostModel::paper();
    let task = TaskSpec {
        name: "bp-like".into(),
        htod: 16 << 20,
        dtoh: 4 << 20,
        kernel_time: Nanos::from_millis(8),
        launches: 2,
    };
    let specs: Vec<SessionSpec> = (0..8).map(|_| SessionSpec::new(task.clone())).collect();
    let cfg = SchedulerConfig::new(&model);
    // 4 shards on 2 switches; shard 3 takes the reset.
    let switch_of = [0usize, 0, 1, 1];
    let clean = run_fabric_scaled(&model, &specs, &switch_of, None, &cfg, None);
    let reset = run_fabric_scaled(&model, &specs, &switch_of, Some(3), &cfg, None);
    assert_eq!(clean.assignment, reset.assignment, "placement ignores faults");
    for shard in 0..3 {
        assert_eq!(
            clean.per_shard[shard], reset.per_shard[shard],
            "peer shard {shard} must be bit-identical while shard 3 resets"
        );
    }
    assert!(
        reset.per_shard[3].makespan > clean.per_shard[3].makespan,
        "the resetting shard itself pays for its reset"
    );
    assert!(reset.makespan >= clean.makespan);
}
