//! Table 1 — "Required hardware and software changes for HIX" — asserted
//! structurally: every changed component the paper lists exists in this
//! reproduction and is reachable through its public API.

#[test]
fn sw_gpu_enclave_exists() {
    // SW | GPU enclave | Sole GPU control | §4.2
    fn assert_api<T>() {}
    assert_api::<hix_core::GpuEnclave>();
    assert_api::<hix_core::GpuEnclaveOptions>();
}

#[test]
fn hw_new_sgx_instructions_exist() {
    // HW | New SGX instructions (EGCREATE/EGADD) | §4.2
    // The instruction handlers are Machine methods.
    let mut m = hix_platform::Machine::default();
    let pid = m.create_process();
    m.ecreate(pid);
    // EGCREATE on a machine with no GPU must fail through the checks, not
    // be absent.
    let err = m.egcreate(pid, hix_pcie::addr::Bdf::new(1, 0, 0));
    assert!(err.is_err());
}

#[test]
fn hw_internal_data_structures_exist() {
    // HW | Internal data structures (GECS, TGMR) | §4.2
    let state = hix_platform::hix::HixState::new();
    assert_eq!(state.tgmr_len(), 0);
    assert!(state.gecs(hix_pcie::addr::Bdf::new(1, 0, 0)).is_none());
}

#[test]
fn hw_mmu_walker_extension_exists() {
    // HW | MMU page table walker | MMIO access protection | §4.3
    // The walker check is HixState::check_access; unprotected addresses
    // pass, which is the baseline behavior.
    let state = hix_platform::hix::HixState::new();
    assert!(state.check_access(
        None,
        hix_platform::VirtAddr::new(0x1000),
        hix_pcie::addr::PhysAddr::new(0x2000),
    ));
}

#[test]
fn hw_pcie_root_complex_lockdown_exists() {
    // HW | PCIe root complex | MMIO lockdown | §4.3
    let mut fabric = hix_pcie::fabric::PcieFabric::new();
    // Lockdown of an absent device reports NoDevice — the mechanism is
    // present and checking its inputs.
    assert!(fabric.lockdown(hix_pcie::addr::Bdf::new(1, 0, 0)).is_err());
}

#[test]
fn sw_inter_enclave_communication_exists() {
    // SW | Inter-enclave communication | Trusted GPU usage | §4.4
    fn assert_api<T>() {}
    assert_api::<hix_core::channel::Endpoint>();
    assert_api::<hix_core::HixSession>();
    assert_api::<hix_core::protocol::Request>();
}
