//! Demand paging — the §5.6 future-work extension: managed GPU
//! allocations commit VRAM on first touch via recoverable page faults.
//! (The paper's prototype lacks this because Gdev does; we implement the
//! conventional-model-compatible subset: zero-fill on-demand commit.)

use hix_driver::driver::{os_map_bar0, os_map_bar1, DriverError, GpuDriver};
use hix_driver::rig::{standard_rig, RigOptions, GPU_BDF};
use hix_driver::DmaBuffer;
use hix_gpu::cmd::GpuCommand;
use hix_gpu::vram::GPU_PAGE_SIZE;
use hix_platform::Machine;
use hix_sim::Payload;

fn setup() -> (Machine, GpuDriver) {
    let mut m = standard_rig(RigOptions::default());
    let pid = m.create_process();
    let bar0_va = os_map_bar0(&mut m, pid, GPU_BDF, 16);
    let bar1_va = os_map_bar1(&mut m, pid, GPU_BDF, 16);
    let driver = GpuDriver::attach(&mut m, pid, GPU_BDF, bar0_va, Some(bar1_va)).unwrap();
    (m, driver)
}

#[test]
fn managed_alloc_commits_on_dma_touch() {
    let (mut m, mut driver) = setup();
    let ctx = driver.create_ctx(&mut m).unwrap();
    let managed = driver.malloc_managed(&mut m, ctx, 3 * GPU_PAGE_SIZE).unwrap();
    let pid = driver.pid();
    let data: Vec<u8> = (0..3 * GPU_PAGE_SIZE as u32).map(|i| (i * 7) as u8).collect();
    let buf = DmaBuffer::alloc(&mut m, pid, data.len() as u64);
    buf.write(&mut m, pid, 0, &Payload::from_bytes(data.clone())).unwrap();
    // The DMA faults on the first (unmapped) page; sync_paged services
    // the fault and re-submits.
    let cmd = GpuCommand::DmaHtoD {
        ctx,
        bus: buf.bus(),
        va: managed,
        len: data.len() as u64,
    };
    driver.submit(&mut m, &cmd).unwrap();
    driver.sync_paged(&mut m, &cmd).unwrap();
    // Read back through a regular DMA (all pages now resident).
    let out = DmaBuffer::alloc(&mut m, pid, data.len() as u64);
    driver
        .dma_dtoh(&mut m, ctx, managed, &out, 0, data.len() as u64)
        .unwrap();
    driver.sync(&mut m).unwrap();
    assert_eq!(out.read(&mut m, pid, 0, data.len() as u64).unwrap(), data);
}

#[test]
fn managed_pages_read_zero_before_first_write() {
    let (mut m, mut driver) = setup();
    let ctx = driver.create_ctx(&mut m).unwrap();
    let managed = driver.malloc_managed(&mut m, ctx, GPU_PAGE_SIZE).unwrap();
    let pid = driver.pid();
    let out = DmaBuffer::alloc(&mut m, pid, 64);
    let cmd = GpuCommand::DmaDtoH {
        ctx,
        va: managed,
        bus: out.bus(),
        len: 64,
    };
    driver.submit(&mut m, &cmd).unwrap();
    driver.sync_paged(&mut m, &cmd).unwrap();
    assert_eq!(out.read(&mut m, pid, 0, 64).unwrap(), vec![0u8; 64]);
}

#[test]
fn wild_access_is_not_recoverable() {
    // A fault outside any managed allocation must surface as an error,
    // not be silently mapped.
    let (mut m, mut driver) = setup();
    let ctx = driver.create_ctx(&mut m).unwrap();
    let pid = driver.pid();
    let buf = DmaBuffer::alloc(&mut m, pid, 64);
    let cmd = GpuCommand::DmaHtoD {
        ctx,
        bus: buf.bus(),
        va: hix_gpu::vram::DevAddr(0xdead_0000),
        len: 64,
    };
    driver.submit(&mut m, &cmd).unwrap();
    let err = driver.sync_paged(&mut m, &cmd);
    assert!(
        matches!(err, Err(DriverError::BadAllocation(_))),
        "wild access must not be paged in: {err:?}"
    );
}

#[test]
fn faulting_kernel_launch_retries_to_completion() {
    use hix_gpu::kernel::kernel_hash;
    let (mut m, mut driver) = setup();
    let ctx = driver.create_ctx(&mut m).unwrap();
    // Input is a committed buffer; output is managed (the common ML
    // pattern: fresh output tensors).
    let input = driver.malloc(&mut m, ctx, 4096).unwrap();
    let output = driver.malloc_managed(&mut m, ctx, 4096 + 16).unwrap();
    driver.mmio_htod(&mut m, ctx, input, &[9u8; 64]).unwrap();
    driver.sync(&mut m).unwrap();
    // Use the built-in encrypt kernel as a stand-in compute kernel —
    // give the context a key first via the DH path.
    let group = hix_crypto::dh::DhGroup::sim();
    let mut rng = hix_crypto::drbg::HmacDrbg::new(b"dp");
    let a = group.generate(&mut rng);
    let b = group.generate(&mut rng);
    let g_ab = group.agree(&b, &a.public).unwrap();
    driver.dh_exp(&mut m, ctx, g_ab.as_bytes(), true).unwrap();
    let cmd = GpuCommand::Launch {
        ctx,
        kernel: kernel_hash(hix_gpu::crypto_kernels::ENCRYPT_KERNEL),
        args: vec![input.value(), 64, output.value(), 1],
    };
    driver.submit(&mut m, &cmd).unwrap();
    driver.sync_paged(&mut m, &cmd).unwrap();
    // The sealed output landed in the (now committed) managed buffer.
    let pid = driver.pid();
    let out = DmaBuffer::alloc(&mut m, pid, 80);
    driver.dma_dtoh(&mut m, ctx, output, &out, 0, 80).unwrap();
    driver.sync(&mut m).unwrap();
    let sealed = out.read(&mut m, pid, 0, 80).unwrap();
    assert_ne!(&sealed[..64], &[9u8; 64][..], "output is ciphertext");
}

#[test]
fn managed_free_reclaims_only_resident_pages() {
    let (mut m, mut driver) = setup();
    let ctx = driver.create_ctx(&mut m).unwrap();
    let managed = driver.malloc_managed(&mut m, ctx, 8 * GPU_PAGE_SIZE).unwrap();
    // Touch only the first page.
    let pid = driver.pid();
    let buf = DmaBuffer::alloc(&mut m, pid, 16);
    let cmd = GpuCommand::DmaHtoD {
        ctx,
        bus: buf.bus(),
        va: managed,
        len: 16,
    };
    driver.submit(&mut m, &cmd).unwrap();
    driver.sync_paged(&mut m, &cmd).unwrap();
    // Freeing must not panic on the non-resident tail; it scrubs and
    // reclaims what exists.
    driver.free(&mut m, ctx, managed, true).unwrap();
}
