//! Pinned-tape property suite for the TDR watchdog's escalation ladder
//! (deadline → kill → reset ordering, closed-form bounded recovery) and
//! for the zero-fault baseline: a machine with no fault plan must never
//! see a single watchdog action.
//!
//! Runs on the in-tree `hix-testkit` harness.

use hix_core::{GpuEnclave, GpuEnclaveOptions, HixSession};
use hix_driver::rig::{standard_rig, RigOptions};
use hix_sim::fault::{EscalationLadder, WatchdogAction};
use hix_sim::{Nanos, Payload};
use hix_testkit::prop::{prop, Source};

/// Random-but-sane ladder parameters. `base` stays nonzero: a zero
/// backoff base never accumulates toward the patience deadline (the
/// real watchdog derives it from `ipc_roundtrip`, which is positive).
fn ladder(s: &mut Source) -> (EscalationLadder, Nanos, Nanos, Nanos, u32) {
    let patience = Nanos::from_nanos(s.in_range(0..2_000_000));
    let base = Nanos::from_nanos(s.in_range(1..50_000));
    let cap = Nanos::from_nanos(s.in_range(base.as_nanos()..1_000_000));
    let kill_grace = Nanos::from_nanos(s.in_range(0..1_000_000));
    let checks = s.in_range(0..6) as u32;
    (
        EscalationLadder::new(patience, base, cap, kill_grace, checks),
        patience,
        kill_grace,
        cap.max(base),
        checks,
    )
}

/// Drives a ladder to exhaustion (the engine never recovers) and
/// returns the full action tape.
fn drain(ladder: &mut EscalationLadder) -> Vec<WatchdogAction> {
    let mut actions = Vec::new();
    loop {
        let a = ladder.next();
        actions.push(a);
        if a == WatchdogAction::Reset {
            return actions;
        }
    }
}

#[test]
fn ladder_orders_deadline_then_kill_then_reset() {
    prop("ladder_orders_deadline_then_kill_then_reset").run(|s| {
        let (mut l, patience, kill_grace, cap, checks) = ladder(s);
        let actions = drain(&mut l);

        let kill_at = actions
            .iter()
            .position(|a| *a == WatchdogAction::Kill)
            .expect("exactly one kill rung");
        assert_eq!(
            actions.iter().filter(|a| **a == WatchdogAction::Kill).count(),
            1
        );
        assert_eq!(*actions.last().unwrap(), WatchdogAction::Reset);
        assert_eq!(
            actions.iter().filter(|a| **a == WatchdogAction::Reset).count(),
            1
        );

        // Pre-kill: capped exponential waits whose sum first crosses the
        // patience deadline exactly at the kill rung.
        let mut waited = Nanos::ZERO;
        let mut prev: Option<Nanos> = None;
        for a in &actions[..kill_at] {
            let WatchdogAction::Wait(d) = *a else {
                panic!("only waits may precede the kill, got {a:?}");
            };
            assert!(d <= cap, "backoff wait {d:?} exceeds the cap {cap:?}");
            if let Some(p) = prev {
                assert!(d >= p, "backoff must be non-decreasing");
            }
            prev = Some(d);
            assert!(
                waited < patience,
                "the ladder kept waiting after the deadline passed"
            );
            waited = waited + d;
        }
        assert!(
            waited >= patience,
            "the kill fired before the patience deadline ({waited:?} < {patience:?})"
        );

        // Post-kill: exactly `checks` grace re-polls of `kill_grace`
        // each, then the reset.
        let grace = &actions[kill_at + 1..actions.len() - 1];
        assert_eq!(grace.len(), checks as usize);
        for a in grace {
            assert_eq!(*a, WatchdogAction::Wait(kill_grace));
        }
    });
}

#[test]
fn ladder_total_wait_bounded_by_closed_form() {
    prop("ladder_total_wait_bounded_by_closed_form").run(|s| {
        let (mut l, _, _, _, _) = ladder(s);
        let bound = l.max_recovery_wait();
        let actions = drain(&mut l);
        let total: u64 = actions
            .iter()
            .filter_map(|a| match a {
                WatchdogAction::Wait(d) => Some(d.as_nanos()),
                _ => None,
            })
            .sum();
        assert!(
            Nanos::from_nanos(total) <= bound,
            "waited {total}ns, closed-form bound {bound:?}"
        );
        assert_eq!(l.waited(), Nanos::from_nanos(total));
    });
}

#[test]
fn zero_faults_mean_zero_watchdog_actions() {
    prop("zero_faults_mean_zero_watchdog_actions")
        .cases(24)
        .run(|s| {
            let mut m = standard_rig(RigOptions::default());
            let mut enclave = GpuEnclave::launch(&mut m, GpuEnclaveOptions::default())
                .expect("enclave launches");
            let mut sess = HixSession::connect(&mut m, &mut enclave).expect("session");
            let a = sess.malloc(&mut m, &mut enclave, 8192).expect("malloc");
            let b = sess.malloc(&mut m, &mut enclave, 8192).expect("malloc");
            let n_ops = s.usize_in(1..12);
            for _ in 0..n_ops {
                match s.choice(5) {
                    0 => {
                        let data = s.vec_u8(1..4096);
                        sess.memcpy_htod(&mut m, &mut enclave, a, &Payload::from_bytes(data))
                            .expect("htod");
                    }
                    1 => {
                        sess.memcpy_dtod(&mut m, &mut enclave, a, b, 4096)
                            .expect("dtod");
                    }
                    2 => {
                        sess.memcpy_dtoh(&mut m, &mut enclave, b, 4096).expect("dtoh");
                    }
                    3 => {
                        sess.memset(&mut m, &mut enclave, a, 4096, s.u8())
                            .expect("memset");
                    }
                    _ => {
                        sess.sync(&mut m, &mut enclave).expect("sync");
                    }
                }
            }
            let metrics = m.trace().metrics();
            for counter in [
                "watchdog.hangs_detected",
                "watchdog.kills",
                "watchdog.resets",
                "watchdog.ecc_kills",
                "watchdog.spurious_cleared",
                "watchdog.transient_recovered",
                "watchdog.recoveries",
                "watchdog.offenses",
                "watchdog.evictions",
                "fault.injected",
            ] {
                assert_eq!(
                    metrics.counter(counter),
                    0,
                    "{counter} fired on a fault-free run"
                );
            }
            assert_eq!(sess.epoch(), 0, "no re-key without a fault");
        });
}
