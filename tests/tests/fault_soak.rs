//! Differential fault-injection soak: the same seeded matrix workload
//! runs fault-free and under seeded fault plans of increasing severity
//! (message drops, duplicates, reorders, delays, corruption, DMA
//! bit-flips, PCIe config storms, GPU-enclave restarts). The recovering
//! runtime must deliver **byte-identical GPU results** in every case,
//! the fault accounting must reconcile exactly (one `Fault` event per
//! injection), same-seed faulted reruns must be trace-identical, and a
//! run with zero faults must record zero recovery work.

use hix_core::{GpuEnclave, GpuEnclaveOptions, HixSession};
use hix_driver::rig::{standard_rig, RigOptions};
use hix_platform::Machine;
use hix_sim::fault::{FaultConfig, FaultPlan};
use hix_sim::{EventKind, Nanos, Payload};
use hix_testkit::Rng;
use hix_workloads::all_kernels;
use std::fmt::Write;

/// Matrix-mul rounds per run (each its own session, so the soak also
/// covers connect/close churn and enclave restarts between rounds).
const ROUNDS: u32 = 3;
/// Matrix dimension: 24×24 i32 inputs (2304-byte transfers — several
/// sealed messages and a multi-chunk-free bulk stream, fast enough to
/// sweep seeds × profiles).
const N: u64 = 24;

/// Everything the differential comparison needs from one run.
struct SoakRun {
    /// DtoH result bytes, one entry per round.
    results: Vec<Vec<u8>>,
    injected: u64,
    fault_events: u64,
    retries: u64,
    retransmits: u64,
    redma: u64,
    rekeys: u64,
    dup_served: u64,
    snapshot: String,
    transcript: String,
}

impl SoakRun {
    fn recovery_total(&self) -> u64 {
        self.retries + self.retransmits + self.redma + self.rekeys + self.dup_served
    }
}

fn rig() -> Machine {
    let m = standard_rig(RigOptions {
        kernels: all_kernels(),
        ..RigOptions::default()
    });
    m.trace().set_recording(true);
    m
}

fn matrix_bytes(rng: &mut Rng, n: u64) -> Vec<u8> {
    (0..n * n)
        .flat_map(|_| ((rng.u32() % 64) as i32).to_le_bytes())
        .collect()
}

/// One full soak run: `ROUNDS` sessions of HtoD → matrix.mul → DtoH,
/// with the fault plan (if any) live for the whole run. The workload
/// RNG stream is separate from the plan's, so clean and faulted runs
/// see identical inputs.
fn soak(seed: u64, profile: Option<FaultConfig>) -> SoakRun {
    let mut m = rig();
    if let Some(cfg) = profile {
        m.set_fault_plan(FaultPlan::new(seed ^ 0xF417, cfg));
    }
    let mut wl = Rng::new(seed);
    let mut enclave = GpuEnclave::launch(&mut m, GpuEnclaveOptions::default()).expect("launch");
    let mut results = Vec::new();
    for round in 0..ROUNDS {
        let mut s = HixSession::connect(&mut m, &mut enclave)
            .unwrap_or_else(|e| panic!("round {round}: connect: {e}"));
        s.load_module(&mut m, &mut enclave, "matrix.mul").expect("module");
        let bytes = N * N * 4;
        let a = s.malloc(&mut m, &mut enclave, bytes).expect("malloc a");
        let b = s.malloc(&mut m, &mut enclave, bytes).expect("malloc b");
        let c = s.malloc(&mut m, &mut enclave, bytes).expect("malloc c");
        let av = matrix_bytes(&mut wl, N);
        let bv = matrix_bytes(&mut wl, N);
        s.memcpy_htod(&mut m, &mut enclave, a, &Payload::from_bytes(av))
            .unwrap_or_else(|e| panic!("round {round}: htod a: {e}"));
        s.memcpy_htod(&mut m, &mut enclave, b, &Payload::from_bytes(bv))
            .unwrap_or_else(|e| panic!("round {round}: htod b: {e}"));
        s.launch(&mut m, &mut enclave, "matrix.mul", &[a.value(), b.value(), c.value(), N])
            .unwrap_or_else(|e| panic!("round {round}: launch: {e}"));
        s.sync(&mut m, &mut enclave).expect("sync");
        let out = s
            .memcpy_dtoh(&mut m, &mut enclave, c, bytes)
            .unwrap_or_else(|e| panic!("round {round}: dtoh: {e}"));
        results.push(out.bytes().to_vec());
        s.close(&mut m, &mut enclave)
            .unwrap_or_else(|e| panic!("round {round}: close: {e}"));
        // Mid-stream GPU-enclave restart, when the plan rolls one: seal
        // the trust state, shut down gracefully, relaunch from the
        // sealed blob, and let the next round reconnect from scratch.
        if let Some(plan) = m.fault_plan() {
            if plan.sample_restart() {
                m.trace().metrics().inc("fault.injected");
                m.trace().metrics().inc("fault.injected.restart");
                m.trace().emit(
                    m.clock().now(),
                    Nanos::ZERO,
                    EventKind::Fault,
                    "inject restart",
                );
                let blob = enclave.seal_trust_state(&mut m).expect("seal trust");
                enclave.shutdown(&mut m).expect("shutdown");
                enclave = GpuEnclave::launch(
                    &mut m,
                    GpuEnclaveOptions {
                        sealed_trust: Some(blob),
                        ..GpuEnclaveOptions::default()
                    },
                )
                .expect("relaunch from sealed trust");
            }
        }
    }
    let mut transcript = String::new();
    writeln!(transcript, "=== soak @ {}", m.clock().now()).unwrap();
    for ev in m.trace().events() {
        writeln!(transcript, "{ev:?}").unwrap();
    }
    transcript.push_str(&m.trace().summary());
    transcript.push_str(&m.trace().obs().snapshot());
    let mx = m.trace().metrics();
    SoakRun {
        results,
        injected: mx.counter("fault.injected"),
        fault_events: m.trace().count(EventKind::Fault),
        retries: mx.counter("recovery.retries"),
        retransmits: mx.counter("recovery.retransmits"),
        redma: mx.counter("recovery.redma"),
        rekeys: mx.counter("recovery.rekeys"),
        dup_served: mx.counter("recovery.dup_served"),
        snapshot: m.trace().obs().snapshot(),
        transcript,
    }
}

/// The acceptance sweep: 3 seeds × {clean, light, heavy}. Faulted runs
/// must be byte-identical to the clean run, the fault ledger must
/// reconcile, and the clean run must show zero faults and zero
/// recovery.
#[test]
fn faulted_runs_are_byte_identical_to_clean() {
    for seed in [0x50A4_0001u64, 0x50A4_0002, 0x50A4_0003] {
        let clean = soak(seed, None);
        assert_eq!(clean.injected, 0, "no plan, no faults (seed {seed:#x})");
        assert_eq!(clean.fault_events, 0, "no plan, no Fault events (seed {seed:#x})");
        assert_eq!(
            clean.recovery_total(),
            0,
            "zero faults injected must mean zero recovery recorded (seed {seed:#x})"
        );
        for (tag, cfg) in [("light", FaultConfig::light()), ("heavy", FaultConfig::heavy())] {
            let faulted = soak(seed, Some(cfg));
            assert_eq!(
                faulted.results, clean.results,
                "{tag} faults changed GPU results (seed {seed:#x})"
            );
            assert!(
                faulted.injected > 0,
                "{tag} plan never fired (seed {seed:#x})"
            );
            assert_eq!(
                faulted.fault_events, faulted.injected,
                "every injection must emit exactly one Fault event ({tag}, seed {seed:#x})"
            );
        }
    }
}

#[test]
fn same_seed_faulted_reruns_are_trace_identical() {
    let a = soak(0xD1FF_5EED, Some(FaultConfig::heavy()));
    let b = soak(0xD1FF_5EED, Some(FaultConfig::heavy()));
    assert!(a.injected > 0, "the heavy plan must fire");
    if a.transcript != b.transcript {
        let line = a
            .transcript
            .lines()
            .zip(b.transcript.lines())
            .position(|(x, y)| x != y)
            .map(|i| {
                format!(
                    "first diverging line {}:\n  run1: {}\n  run2: {}",
                    i,
                    a.transcript.lines().nth(i).unwrap_or("<eof>"),
                    b.transcript.lines().nth(i).unwrap_or("<eof>"),
                )
            })
            .unwrap_or_else(|| "lengths differ".into());
        panic!("same-seed faulted reruns diverged — fault injection is not deterministic.\n{line}");
    }
    assert_eq!(a.snapshot, b.snapshot, "metrics snapshots must agree too");
}

#[test]
fn heavier_profiles_inject_and_recover_more() {
    let light = soak(0xBEEF, Some(FaultConfig::light()));
    let heavy = soak(0xBEEF, Some(FaultConfig::heavy()));
    assert!(
        heavy.injected > light.injected,
        "heavy ({}) must out-inject light ({})",
        heavy.injected,
        light.injected
    );
    assert!(heavy.recovery_total() > 0, "heavy faults must exercise recovery");
    assert!(
        heavy.snapshot.contains("recovery.retries_per_op")
            || heavy.retries == 0,
        "retry histogram must appear once retries happened"
    );
}
