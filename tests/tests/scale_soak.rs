//! Differential scale soak for the weighted-fair scheduler: the same
//! seeded tenant population runs twice per cell across 3 seeds ×
//! {4, 1000} users × fault profiles, and every reproduction must be
//! exact — identical [`ScaleOutcome`]s (completions, service, waits,
//! parks) *and* identical observability snapshots, so a rerun is
//! trace-identical, not merely same-shaped. On top of determinism the
//! soak checks the degraded-mode guarantee at scale: a heavy fault
//! profile (hangs, kills, secure resets, repeat offenders) may slow the
//! fleet by bounded watchdog windows but must never starve a healthy
//! tenant, and bounded residency (parking) must conserve service.

use hix_core::multiuser::{
    run_scaled, seeded_session_faults, FaultProfile, Mode, ScaleOutcome, SchedulerConfig,
    SessionFaults, SessionSpec, TaskSpec,
};
use hix_core::{GpuEnclave, GpuEnclaveOptions, HixSession};
use hix_driver::rig::{standard_rig, RigOptions};
use hix_obs::Metrics;
use hix_sim::{CostModel, Nanos, Payload};
use hix_testkit::Rng;

const SEEDS: [u64; 3] = [1, 2, 3];
const SIZES: [usize; 2] = [4, 1000];
/// A heavy offender blocks the engine for watchdog windows every peer
/// must absorb; this multiple of the clean makespan bounds what the
/// soak tolerates before calling it starvation.
const STARVATION_SLACK: f64 = 1.5;

/// A bp-like tenant (the Figure 8 shape the scale sweep also uses).
fn task() -> TaskSpec {
    TaskSpec {
        name: "bp-like".into(),
        htod: 117 << 20,
        dtoh: 42 << 20,
        kernel_time: Nanos::from_millis(22),
        launches: 2,
    }
}

fn population(seed: u64, users: usize, profile: FaultProfile) -> Vec<SessionSpec> {
    seeded_session_faults(seed, users, profile)
        .into_iter()
        .map(|faults| SessionSpec {
            faults,
            ..SessionSpec::new(task())
        })
        .collect()
}

/// Runs one cell and returns the outcome plus its full metrics
/// snapshot (the trace identity the rerun must reproduce).
fn run_cell(sessions: &[SessionSpec], config: &SchedulerConfig) -> (ScaleOutcome, String) {
    let model = CostModel::paper();
    let obs = Metrics::new();
    let out = run_scaled(&model, sessions, Mode::Hix, config, Some(&obs));
    let snapshot = obs.snapshot();
    (out, snapshot)
}

#[test]
fn reruns_are_byte_identical_across_seeds_and_sizes() {
    let model = CostModel::paper();
    let config = SchedulerConfig::new(&model);
    for seed in SEEDS {
        for users in SIZES {
            for profile in [FaultProfile::None, FaultProfile::Heavy] {
                let sessions = population(seed, users, profile);
                let (a, snap_a) = run_cell(&sessions, &config);
                let (b, snap_b) = run_cell(&sessions, &config);
                assert_eq!(
                    a, b,
                    "outcome diverged on rerun (seed {seed}, {users} users, {} profile)",
                    profile.name()
                );
                assert_eq!(
                    snap_a,
                    snap_b,
                    "metrics snapshot diverged on rerun (seed {seed}, {users} users, {} profile)",
                    profile.name()
                );
                assert_eq!(a.completions.len(), users);
            }
        }
    }
}

#[test]
fn different_seeds_shuffle_the_fault_burden_not_the_totals() {
    // Sanity on the soak's own inputs: distinct seeds must produce
    // distinct heavy populations (otherwise the 3-seed sweep is one
    // seed in disguise), while the fault-free profile is seed-blind.
    for users in SIZES {
        let heavy: Vec<_> = SEEDS
            .iter()
            .map(|&s| seeded_session_faults(s, users, FaultProfile::Heavy))
            .collect();
        assert_ne!(heavy[0], heavy[1], "{users}-user heavy populations collide");
        assert_ne!(heavy[1], heavy[2], "{users}-user heavy populations collide");
        for &s in &SEEDS {
            assert!(
                seeded_session_faults(s, users, FaultProfile::None)
                    .iter()
                    .all(|f| *f == SessionFaults::default()),
                "the none profile must be fault-free"
            );
        }
    }
}

#[test]
fn degraded_profile_never_starves_healthy_tenants() {
    let model = CostModel::paper();
    let config = SchedulerConfig::new(&model);
    for seed in SEEDS {
        for users in SIZES {
            let clean = population(seed, users, FaultProfile::None);
            let (clean_out, _) = run_cell(&clean, &config);
            let degraded = population(seed, users, FaultProfile::Heavy);
            let (out, _) = run_cell(&degraded, &config);

            let bound = clean_out.makespan.as_nanos() as f64 * STARVATION_SLACK;
            let mut healthy = 0u64;
            for (i, spec) in degraded.iter().enumerate() {
                if spec.faults != SessionFaults::default() {
                    continue;
                }
                healthy += 1;
                assert!(!out.evicted[i], "healthy tenant {i} was evicted (seed {seed})");
                let done = out.completions[i].as_nanos();
                assert!(done > 0, "healthy tenant {i} never finished (seed {seed})");
                assert!(
                    (done as f64) <= bound,
                    "healthy tenant {i} starved: finished at {done} ns, clean makespan \
                     {} ns, slack {STARVATION_SLACK} (seed {seed}, {users} users)",
                    clean_out.makespan.as_nanos()
                );
                // A healthy tenant's delivered service is its own demand:
                // offenders may delay it but never consume its share.
                assert_eq!(
                    out.service[i], clean_out.service[i],
                    "healthy tenant {i}'s GPU service changed under faults (seed {seed})"
                );
            }
            assert!(
                healthy >= (users as u64) / 2,
                "the heavy profile left too few healthy tenants to make the check \
                 meaningful ({healthy}/{users})"
            );
        }
    }
}

#[test]
fn bounded_residency_conserves_service_and_parks_transparently() {
    let model = CostModel::paper();
    let unbounded = SchedulerConfig::new(&model);
    let bounded = SchedulerConfig {
        max_resident: 64,
        ..unbounded
    };
    let sessions = population(SEEDS[0], 1000, FaultProfile::None);
    let (free, _) = run_cell(&sessions, &unbounded);
    let (parked, snap) = run_cell(&sessions, &bounded);

    assert_eq!(free.parks, 0, "an unbounded resident set never parks");
    assert!(parked.parks > 0, "256 slots over 1000 tenants must park");
    assert_eq!(
        parked.parks, parked.unparks,
        "every parked session must be transparently unsealed again"
    );
    assert!(parked.peak_resident <= 64, "the admission bound leaked");
    assert_eq!(
        free.service, parked.service,
        "parking must conserve every tenant's delivered GPU service"
    );
    assert!(
        parked.makespan >= free.makespan,
        "seal/unseal overhead cannot make the fleet faster"
    );
    assert!(
        parked.fairness_ratio() < 1.1,
        "parking skewed fairness: {}",
        parked.fairness_ratio()
    );
    assert!(
        snap.contains("sched.parks"),
        "parking telemetry missing from the metrics snapshot"
    );
}

/// Batched-submission sweep over 1000 *real* enclave sessions (the
/// full attested stack, not the scheduler model): every session runs
/// the same 4-op mix once through the synchronous wrappers and once
/// through explicit batch-8 submission. Results must be byte-identical
/// per session, and — counter-checked via the `cmdq.wakes` ledger the
/// channel keeps — batching must cut channel wakes per op by the full
/// frame factor: the 4-op mix rides one frame, so exactly 4× fewer
/// doorbell rings than one-wake-per-op sync.
#[test]
fn batched_submission_reduces_wakes_per_op_at_scale() {
    const USERS: usize = 1000;
    const BYTES: u64 = 256;
    /// Per-session ops measured inside the wake window (htod, memset,
    /// dtod, sync).
    const OPS_PER_SESSION: u64 = 4;

    /// Runs the sweep in one mode; returns each session's result bytes
    /// plus the channel wakes accumulated inside the op-mix windows.
    fn sweep(batched: bool) -> (Vec<Vec<u8>>, u64) {
        let mut m = standard_rig(RigOptions::default());
        let mut enclave =
            GpuEnclave::launch(&mut m, GpuEnclaveOptions::default()).expect("launch");
        let mut wl = Rng::new(0x5CA1_E5CA);
        let mut results = Vec::with_capacity(USERS);
        let mut wakes = 0u64;
        for u in 0..USERS {
            let mut s = HixSession::connect(&mut m, &mut enclave)
                .unwrap_or_else(|e| panic!("session {u}: connect: {e}"));
            let a = s.malloc(&mut m, &mut enclave, BYTES).expect("malloc a");
            let b = s.malloc(&mut m, &mut enclave, BYTES).expect("malloc b");
            let fill = (wl.u32() & 0xff) as u8;
            let payload: Vec<u8> = (0..BYTES).map(|_| (wl.u32() & 0xff) as u8).collect();
            let wakes0 = m.trace().metrics().counter("cmdq.wakes");
            if batched {
                s.submit_memset(&mut m, &mut enclave, b, BYTES, fill).expect("memset");
                s.submit_htod(&mut m, &mut enclave, a, &Payload::from_bytes(payload))
                    .expect("htod");
                s.submit_dtod(&mut m, &mut enclave, a, b, BYTES / 2).expect("dtod");
                s.submit_sync(&mut m, &mut enclave).expect("sync");
                s.flush(&mut m, &mut enclave).expect("flush");
                assert!(
                    s.take_completions().iter().all(|(_, st)| *st == hix_core::CmdStatus::Ok),
                    "session {u}: a queued command failed"
                );
            } else {
                s.memset(&mut m, &mut enclave, b, BYTES, fill).expect("memset");
                s.memcpy_htod(&mut m, &mut enclave, a, &Payload::from_bytes(payload))
                    .expect("htod");
                s.memcpy_dtod(&mut m, &mut enclave, a, b, BYTES / 2).expect("dtod");
                s.sync(&mut m, &mut enclave).expect("sync");
            }
            wakes += m.trace().metrics().counter("cmdq.wakes") - wakes0;
            let out = s.memcpy_dtoh(&mut m, &mut enclave, b, BYTES).expect("dtoh");
            results.push(out.bytes().to_vec());
            s.close(&mut m, &mut enclave).expect("close");
        }
        (results, wakes)
    }

    let (sync_results, sync_wakes) = sweep(false);
    let (batched_results, batched_wakes) = sweep(true);
    assert_eq!(
        batched_results, sync_results,
        "batched engine changed per-session results at scale"
    );
    assert_eq!(
        sync_wakes,
        USERS as u64 * OPS_PER_SESSION,
        "sync mode must ring the doorbell once per op"
    );
    assert!(
        batched_wakes < sync_wakes,
        "batching must strictly reduce channel wakes ({batched_wakes} vs {sync_wakes})"
    );
    // The whole 4-op mix (one bulk transfer, three compute-plane ops)
    // fits a single batch-8 frame, so the per-op wake rate drops by
    // exactly the frame factor.
    assert!(
        batched_wakes * OPS_PER_SESSION <= sync_wakes,
        "batch-8 frames must amortize the doorbell 4x over this mix \
         ({batched_wakes} vs {sync_wakes})"
    );
}
