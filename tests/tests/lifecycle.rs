//! Lifecycle integration: session churn, enclave restarts, cold boots,
//! and resource reclamation across the whole stack.

use hix_core::{GpuEnclave, GpuEnclaveOptions, HixSession};
use hix_driver::rig::{standard_rig, RigOptions, GPU_BDF};
use hix_platform::Machine;
use hix_sim::Payload;

fn rig() -> Machine {
    standard_rig(RigOptions::default())
}

#[test]
fn many_sessions_sequentially() {
    let mut m = rig();
    let mut enclave = GpuEnclave::launch(&mut m, GpuEnclaveOptions::default()).unwrap();
    for i in 0..10u32 {
        let mut s = HixSession::connect_with(
            &mut m,
            &mut enclave,
            1 << 20,
            format!("churn-{i}").as_bytes(),
        )
        .unwrap();
        let dev = s.malloc(&mut m, &mut enclave, 8192).unwrap();
        let data = vec![i as u8; 8192];
        s.memcpy_htod(&mut m, &mut enclave, dev, &Payload::from_bytes(data.clone()))
            .unwrap();
        let back = s.memcpy_dtoh(&mut m, &mut enclave, dev, 8192).unwrap();
        assert_eq!(back.bytes(), &data[..]);
        s.close(&mut m, &mut enclave).unwrap();
        assert_eq!(enclave.session_count(), 0, "iteration {i}");
    }
}

#[test]
fn interleaved_concurrent_sessions() {
    let mut m = rig();
    let mut enclave = GpuEnclave::launch(&mut m, GpuEnclaveOptions::default()).unwrap();
    let mut sessions: Vec<HixSession> = (0..4u32)
        .map(|i| {
            HixSession::connect_with(&mut m, &mut enclave, 1 << 20, format!("u{i}").as_bytes())
                .unwrap()
        })
        .collect();
    let devs: Vec<_> = sessions
        .iter_mut()
        .enumerate()
        .map(|(i, s)| {
            let dev = s.malloc(&mut m, &mut enclave, 4096).unwrap();
            s.memcpy_htod(&mut m, &mut enclave, dev, &Payload::from_bytes(vec![i as u8 + 1; 4096]))
                .unwrap();
            dev
        })
        .collect();
    // Interleave readbacks in reverse order.
    for (i, s) in sessions.iter_mut().enumerate().rev() {
        let back = s.memcpy_dtoh(&mut m, &mut enclave, devs[i], 4096).unwrap();
        assert!(back.bytes().iter().all(|&b| b == i as u8 + 1));
    }
    for s in sessions {
        s.close(&mut m, &mut enclave).unwrap();
    }
}

#[test]
fn enclave_shutdown_and_relaunch_cycles() {
    let mut m = rig();
    for cycle in 0..3 {
        let mut enclave = GpuEnclave::launch(&mut m, GpuEnclaveOptions::default())
            .unwrap_or_else(|e| panic!("cycle {cycle}: {e}"));
        let mut s = HixSession::connect_with(
            &mut m,
            &mut enclave,
            1 << 20,
            format!("cycle-{cycle}").as_bytes(),
        )
        .unwrap();
        let dev = s.malloc(&mut m, &mut enclave, 4096).unwrap();
        s.memcpy_htod(&mut m, &mut enclave, dev, &Payload::from_bytes(vec![7; 4096]))
            .unwrap();
        s.close(&mut m, &mut enclave).unwrap();
        enclave.shutdown(&mut m).unwrap();
    }
}

#[test]
fn cold_boot_recovers_from_forced_kill() {
    let mut m = rig();
    for boot in 0..2 {
        let enclave = GpuEnclave::launch(&mut m, GpuEnclaveOptions::default())
            .unwrap_or_else(|e| panic!("boot {boot}: {e}"));
        m.kill_process(enclave.pid());
        // GPU is now locked until reboot.
        assert!(GpuEnclave::launch(&mut m, GpuEnclaveOptions::default()).is_err());
        m.cold_boot();
    }
    // After the final boot a healthy enclave works again.
    let mut enclave = GpuEnclave::launch(&mut m, GpuEnclaveOptions::default()).unwrap();
    let mut s = HixSession::connect(&mut m, &mut enclave).unwrap();
    let dev = s.malloc(&mut m, &mut enclave, 4096).unwrap();
    s.memcpy_htod(&mut m, &mut enclave, dev, &Payload::from_bytes(vec![1; 4096]))
        .unwrap();
}

#[test]
fn vram_is_reclaimed_across_sessions() {
    // Alloc/free a large buffer repeatedly: without frame reclamation the
    // 1.5 GiB device would run out after a few iterations.
    let mut m = rig();
    let mut enclave = GpuEnclave::launch(&mut m, GpuEnclaveOptions::default()).unwrap();
    for i in 0..8u32 {
        let mut s = HixSession::connect_with(
            &mut m,
            &mut enclave,
            1 << 20,
            format!("big-{i}").as_bytes(),
        )
        .unwrap();
        let dev = s.malloc(&mut m, &mut enclave, 400 << 20).unwrap();
        let _ = dev;
        s.close(&mut m, &mut enclave).unwrap();
    }
}

#[test]
fn gdev_and_hix_can_alternate_with_graceful_handoff() {
    use hix_driver::Gdev;
    let mut m = rig();
    // Gdev first (OS-owned GPU).
    let pid = m.create_process();
    let mut gdev = Gdev::open(&mut m, pid, GPU_BDF).unwrap();
    let dev = gdev.malloc(&mut m, 4096).unwrap();
    gdev.memcpy_htod(&mut m, dev, &Payload::from_bytes(vec![1; 4096])).unwrap();
    gdev.close(&mut m).unwrap();
    // HIX takes over; the enclave resets the device at init.
    let mut enclave = GpuEnclave::launch(&mut m, GpuEnclaveOptions::default()).unwrap();
    let mut s = HixSession::connect(&mut m, &mut enclave).unwrap();
    let dev = s.malloc(&mut m, &mut enclave, 4096).unwrap();
    let back = s.memcpy_dtoh(&mut m, &mut enclave, dev, 4096).unwrap();
    assert!(
        back.bytes().iter().all(|&b| b == 0),
        "fresh HIX allocation must not see Gdev-era residue (device was reset)"
    );
    s.close(&mut m, &mut enclave).unwrap();
    enclave.shutdown(&mut m).unwrap();
    // And back to Gdev after graceful release.
    let pid2 = m.create_process();
    let gdev2 = Gdev::open(&mut m, pid2, GPU_BDF);
    assert!(gdev2.is_ok(), "GPU returned to the OS after graceful termination");
}
