//! Property tests for the async command-queue runtime: seeded op
//! tapes drive explicit batched submission under randomized wire-fault
//! mixes (drop/dup/reorder) and randomized batch sizes, checking the
//! queue invariants the protocol promises:
//!
//! * **FIFO, exactly-once**: completions retire in submission-id order
//!   and every submitted command completes exactly once — never lost,
//!   never duplicated — no matter what the wire does.
//! * **Bounded occupancy**: the submission ring never holds more than
//!   [`HixSession::RING_CAPACITY`] commands; past that, backpressure
//!   flushes make room.
//! * **Wake accounting**: every channel wake is a frame, a retransmit,
//!   or a post-rekey resend — `cmdq.wakes` tiles exactly against
//!   `cmdq.frames` + `recovery.retries` + `recovery.rekeys`, and on a
//!   clean wire wakes equal frames.
//! * **Backoff closed form**: total retransmit backoff time is bounded
//!   by `f(n) = Σ_{i<n} min(base·2^i, cap)` for `n` total retries.
//!   Retries split across round-trips (and resets after a re-key) only
//!   shrink individual delays, so the aggregate bound holds because
//!   `f` is superadditive.
//!
//! Runs on the in-tree `hix-testkit` harness; the seed corpus in
//! `proptest_cmdqueue.seeds` is replayed before every run.

use hix_core::{CmdId, CmdStatus, GpuEnclave, GpuEnclaveOptions, HixSession};
use hix_driver::rig::{standard_rig, RigOptions};
use hix_platform::Machine;
use hix_sim::fault::{FaultConfig, FaultPlan};
use hix_gpu::vram::DevAddr;
use hix_sim::Payload;
use hix_testkit::prop::{prop, Source};
use hix_workloads::all_kernels;

const SEEDS: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/proptest_cmdqueue.seeds");

fn rig() -> Machine {
    let m = standard_rig(RigOptions { kernels: all_kernels(), ..RigOptions::default() });
    m.trace().set_recording(true);
    m
}

/// One drawn queue operation against two pre-allocated buffers.
#[derive(Debug, Clone)]
enum QueueOp {
    Memset { which: bool, value: u8 },
    DtoD { forward: bool },
    HtoD { which: bool, len: usize },
    LoadModule,
    /// May complete `Err` if the module was never loaded — errors must
    /// still retire in order, exactly once.
    Launch,
    Sync,
    /// Harvest completions mid-run instead of only at the end.
    Harvest,
}

fn queue_op(s: &mut Source) -> QueueOp {
    match s.choice(7) {
        0 => QueueOp::Memset { which: s.bool(), value: s.u8() },
        1 => QueueOp::DtoD { forward: s.bool() },
        2 => QueueOp::HtoD { which: s.bool(), len: s.usize_in(4..256) },
        3 => QueueOp::LoadModule,
        4 => QueueOp::Launch,
        5 => QueueOp::Sync,
        _ => QueueOp::Harvest,
    }
}

/// Drop/dup/reorder mix drawn from the tape — message faults only, so
/// recovery stays in the retransmit/re-key tier (no device resets).
fn wire_faults(s: &mut Source) -> FaultConfig {
    FaultConfig {
        drop_pm: s.in_range(0..60) as u32,
        dup_pm: s.in_range(0..60) as u32,
        reorder_pm: s.in_range(0..60) as u32,
        ..FaultConfig::none()
    }
}

/// Submits a drawn op, collecting its id; `Harvest` instead drains the
/// completion ring into `done`.
#[allow(clippy::too_many_arguments)]
fn apply_op(
    op: QueueOp,
    m: &mut Machine,
    enclave: &mut GpuEnclave,
    s: &mut HixSession,
    a: DevAddr,
    b: DevAddr,
    submitted: &mut Vec<CmdId>,
    done: &mut Vec<(CmdId, CmdStatus)>,
) {
    let buf = |which: bool| if which { a } else { b };
    let id = match op {
        QueueOp::Memset { which, value } => {
            s.submit_memset(m, enclave, buf(which), 4096, value).expect("submit memset")
        }
        QueueOp::DtoD { forward } => {
            let (src, dst) = if forward { (a, b) } else { (b, a) };
            s.submit_dtod(m, enclave, src, dst, 4096).expect("submit dtod")
        }
        QueueOp::HtoD { which, len } => {
            let payload = Payload::from_bytes(vec![(len & 0xff) as u8; len]);
            s.submit_htod(m, enclave, buf(which), &payload).expect("submit htod")
        }
        QueueOp::LoadModule => {
            s.submit_load_module(m, enclave, "matrix.mul").expect("submit module")
        }
        QueueOp::Launch => s
            .submit_launch(m, enclave, "matrix.mul", &[a.value(), b.value(), a.value(), 8])
            .expect("submit launch"),
        QueueOp::Sync => s.submit_sync(m, enclave).expect("submit sync"),
        QueueOp::Harvest => {
            done.extend(s.take_completions());
            return;
        }
    };
    submitted.push(id);
}

/// FIFO order, exactly-once retirement, and bounded ring occupancy for
/// arbitrary op tapes under arbitrary drop/dup/reorder mixes. Op
/// counts exceed [`HixSession::RING_CAPACITY`] so backpressure flushes
/// are exercised, not just the explicit final drain.
#[test]
fn completions_are_fifo_exactly_once_under_wire_faults() {
    prop("completions_are_fifo_exactly_once_under_wire_faults")
        .corpus(SEEDS)
        .cases(12)
        .run(|src| {
            let cfg = wire_faults(src);
            let plan_seed = src.u64();
            let batch = 1 + src.usize_in(0..HixSession::DEFAULT_BATCH * 2);
            let ops = src.collect(1..96, queue_op);
            let mut m = rig();
            m.set_fault_plan(FaultPlan::new(plan_seed, cfg));
            let mut enclave =
                GpuEnclave::launch(&mut m, GpuEnclaveOptions::default()).expect("launch");
            let mut s = HixSession::connect(&mut m, &mut enclave).expect("connect");
            s.set_batch_max(batch);
            let a = s.malloc(&mut m, &mut enclave, 4096).expect("malloc a");
            let b = s.malloc(&mut m, &mut enclave, 4096).expect("malloc b");
            let mut submitted = Vec::new();
            let mut done = Vec::new();
            for op in ops {
                apply_op(op, &mut m, &mut enclave, &mut s, a, b, &mut submitted, &mut done);
                assert!(
                    s.pending_cmds() <= HixSession::RING_CAPACITY,
                    "ring occupancy {} exceeds capacity",
                    s.pending_cmds()
                );
            }
            s.flush(&mut m, &mut enclave).expect("flush");
            assert_eq!(s.pending_cmds(), 0, "flush must drain the ring");
            done.extend(s.take_completions());
            // Exactly-once, in submission order: the concatenation of
            // every harvest equals the submitted-id sequence.
            let retired: Vec<CmdId> = done.iter().map(|(id, _)| *id).collect();
            assert_eq!(retired, submitted, "completions lost, duplicated, or reordered");
            s.close(&mut m, &mut enclave).expect("close");
        });
}

/// On a clean wire the wake ledger is exact: flushing `k` queued
/// commands rings the doorbell once per frame, frames carry between
/// `batch_max` and one command each, and `cmdq.frame_cmds` tiles the
/// submitted count.
#[test]
fn clean_wire_wakes_equal_frames() {
    prop("clean_wire_wakes_equal_frames")
        .corpus(SEEDS)
        .cases(16)
        .run(|src| {
            let batch = 1 + src.usize_in(0..HixSession::DEFAULT_BATCH * 2);
            let k = 1 + src.usize_in(0..80);
            let mut m = rig();
            let mut enclave =
                GpuEnclave::launch(&mut m, GpuEnclaveOptions::default()).expect("launch");
            let mut s = HixSession::connect(&mut m, &mut enclave).expect("connect");
            s.set_batch_max(batch);
            let a = s.malloc(&mut m, &mut enclave, 4096).expect("malloc");
            let mx = m.trace().metrics();
            let (wakes0, frames0, cmds0) = (
                mx.counter("cmdq.wakes"),
                mx.counter("cmdq.frames"),
                mx.counter("cmdq.frame_cmds"),
            );
            for i in 0..k {
                s.submit_memset(&mut m, &mut enclave, a, 4096, (i & 0xff) as u8)
                    .expect("submit");
            }
            s.flush(&mut m, &mut enclave).expect("flush");
            let mx = m.trace().metrics();
            let wakes = mx.counter("cmdq.wakes") - wakes0;
            let frames = mx.counter("cmdq.frames") - frames0;
            let cmds = mx.counter("cmdq.frame_cmds") - cmds0;
            assert_eq!(cmds, k as u64, "every submitted command rides exactly one frame");
            assert_eq!(wakes, frames, "clean wire: one doorbell ring per frame");
            assert!(frames >= k.div_ceil(batch) as u64, "frames carry at most batch_max");
            assert!(frames <= k as u64, "frames carry at least one command");
        });
}

/// Under wire faults every channel wake is still accounted for:
/// `cmdq.wakes` tiles exactly against initial frame sends, retransmits,
/// and post-rekey resends — and the total backoff time spent between
/// retransmits is bounded by the `Backoff` closed form evaluated at
/// the total retry count.
#[test]
fn faulty_wire_wakes_and_backoff_are_bounded() {
    prop("faulty_wire_wakes_and_backoff_are_bounded")
        .corpus(SEEDS)
        .cases(12)
        .run(|src| {
            let cfg = FaultConfig {
                drop_pm: 40 + src.in_range(0..200) as u32,
                dup_pm: src.in_range(0..60) as u32,
                reorder_pm: src.in_range(0..60) as u32,
                ..FaultConfig::none()
            };
            let plan_seed = src.u64();
            let k = 1 + src.usize_in(0..48);
            let mut m = rig();
            m.set_fault_plan(FaultPlan::new(plan_seed, cfg));
            let mut enclave =
                GpuEnclave::launch(&mut m, GpuEnclaveOptions::default()).expect("launch");
            let mut s = HixSession::connect(&mut m, &mut enclave).expect("connect");
            let a = s.malloc(&mut m, &mut enclave, 4096).expect("malloc");
            let mx = m.trace().metrics();
            let (wakes0, frames0, retries0, rekeys0) = (
                mx.counter("cmdq.wakes"),
                mx.counter("cmdq.frames"),
                mx.counter("recovery.retries"),
                mx.counter("recovery.rekeys"),
            );
            let backoff0 =
                mx.hist("recovery.backoff_ns").map(|h| h.sum()).unwrap_or(0);
            for i in 0..k {
                s.submit_memset(&mut m, &mut enclave, a, 4096, (i & 0xff) as u8)
                    .expect("submit");
            }
            s.flush(&mut m, &mut enclave).expect("flush");
            let mx = m.trace().metrics();
            let wakes = mx.counter("cmdq.wakes") - wakes0;
            let frames = mx.counter("cmdq.frames") - frames0;
            let retries = mx.counter("recovery.retries") - retries0;
            let rekeys = mx.counter("recovery.rekeys") - rekeys0;
            let backoff =
                mx.hist("recovery.backoff_ns").map(|h| h.sum()).unwrap_or(0) - backoff0;
            assert_eq!(
                wakes,
                frames + retries + rekeys,
                "every wake is a frame, a retransmit, or a post-rekey resend"
            );
            // Closed form: the retransmit schedule inside one
            // round-trip is min(base·2^i, cap); resets (new round-trip
            // or post-rekey) restart at base, which only shrinks
            // delays, so f(total retries) bounds the aggregate.
            let base = m.model().ipc_roundtrip.as_nanos();
            let cap = base * 64;
            let bound: u64 = (0..retries.min(64))
                .map(|i| (base << i.min(32)).min(cap))
                .sum::<u64>()
                + retries.saturating_sub(64) * cap;
            assert!(
                backoff <= bound,
                "total backoff {backoff}ns exceeds the closed-form bound {bound}ns \
                 for {retries} retries"
            );
        });
}
