//! Differential equivalence of the async command-queue runtime: the
//! same seeded op mix runs once through the synchronous `HixSession`
//! wrappers and once through explicit batched submission
//! (`submit_*`/`flush`/`take_completions`), across 3 seeds × {none,
//! light, heavy} fault profiles. The two engines must produce
//! **byte-identical GPU results** in every cell, completions must
//! retire in FIFO order with every command accounted for, request
//! attribution must reconcile ±0 in both modes, and batching must
//! strictly reduce channel wakes.
//!
//! Fault-ledger note: with a fault plan live, the per-kind
//! `fault.injected.*` ledgers are compared across same-seed *reruns of
//! the same mode* (injection is deterministic), not across modes — the
//! two engines put different frame counts on the wire, so the plan's
//! per-message sampling necessarily diverges. Under `none` both modes'
//! ledgers are identical (all zero) and asserted as such.

use hix_core::{CmdStatus, GpuEnclave, GpuEnclaveOptions, HixSession};
use hix_driver::rig::{standard_rig, RigOptions};
use hix_platform::Machine;
use hix_sim::fault::{FaultConfig, FaultPlan};
use hix_sim::{EventKind, Payload};
use hix_testkit::Rng;
use hix_workloads::all_kernels;

/// Sessions per run (connect/close churn in both engines).
const ROUNDS: u32 = 3;
/// Matrix dimension: 24×24 i32 inputs, multi-message sealed streams.
const N: u64 = 24;

struct EquivRun {
    /// DtoH result bytes, one entry per round.
    results: Vec<Vec<u8>>,
    injected: u64,
    fault_events: u64,
    /// Every `fault.injected.*` snapshot line (the per-kind ledger).
    ledger: Vec<String>,
    wakes: u64,
    frames: u64,
    snapshot: String,
}

fn rig() -> Machine {
    let m = standard_rig(RigOptions {
        kernels: all_kernels(),
        ..RigOptions::default()
    });
    m.trace().set_recording(true);
    m.trace().obs().set_attributing(true);
    m
}

fn matrix_bytes(rng: &mut Rng, n: u64) -> Vec<u8> {
    (0..n * n)
        .flat_map(|_| ((rng.u32() % 64) as i32).to_le_bytes())
        .collect()
}

/// One run of the shared op mix. `batched` selects the engine: the
/// synchronous wrappers (one wake per op) or explicit ring submission
/// (the queueable stretch rides batched frames). The workload RNG
/// stream is identical in both modes, so inputs — and therefore GPU
/// results — must be too.
fn run_mix(seed: u64, profile: Option<FaultConfig>, batched: bool) -> EquivRun {
    let mut m = rig();
    if let Some(cfg) = profile {
        m.set_fault_plan(FaultPlan::new(seed ^ 0xF417, cfg));
    }
    let mut wl = Rng::new(seed);
    let mut enclave = GpuEnclave::launch(&mut m, GpuEnclaveOptions::default()).expect("launch");
    let mut results = Vec::new();
    for round in 0..ROUNDS {
        let mut s = HixSession::connect(&mut m, &mut enclave)
            .unwrap_or_else(|e| panic!("round {round}: connect: {e}"));
        let bytes = N * N * 4;
        let a = s.malloc(&mut m, &mut enclave, bytes).expect("malloc a");
        let b = s.malloc(&mut m, &mut enclave, bytes).expect("malloc b");
        let c = s.malloc(&mut m, &mut enclave, bytes).expect("malloc c");
        let av = matrix_bytes(&mut wl, N);
        let bv = matrix_bytes(&mut wl, N);
        // Seeded variety beyond the fixed mix, drawn identically in
        // both modes: 0 = pre-clear the output, 1 = an extra on-GPU
        // copy, 2 = nothing.
        let extra = wl.u32() % 3;
        if batched {
            let mut ids = Vec::new();
            ids.push(s.submit_load_module(&mut m, &mut enclave, "matrix.mul").unwrap());
            ids.push(s.submit_htod(&mut m, &mut enclave, a, &Payload::from_bytes(av)).unwrap());
            ids.push(s.submit_htod(&mut m, &mut enclave, b, &Payload::from_bytes(bv)).unwrap());
            match extra {
                0 => ids.push(s.submit_memset(&mut m, &mut enclave, c, bytes, 0).unwrap()),
                1 => ids.push(s.submit_dtod(&mut m, &mut enclave, a, c, bytes).unwrap()),
                _ => {}
            }
            ids.push(
                s.submit_launch(&mut m, &mut enclave, "matrix.mul", &[
                    a.value(),
                    b.value(),
                    c.value(),
                    N,
                ])
                .unwrap(),
            );
            ids.push(s.submit_sync(&mut m, &mut enclave).unwrap());
            s.flush(&mut m, &mut enclave)
                .unwrap_or_else(|e| panic!("round {round}: flush: {e}"));
            assert_eq!(s.pending_cmds(), 0, "flush must drain the ring");
            let comps = s.take_completions();
            assert_eq!(
                comps.iter().map(|(id, _)| *id).collect::<Vec<_>>(),
                ids,
                "completions must retire in FIFO submission order"
            );
            for (id, status) in &comps {
                assert_eq!(status, &CmdStatus::Ok, "command {id} failed");
            }
        } else {
            s.load_module(&mut m, &mut enclave, "matrix.mul").expect("module");
            s.memcpy_htod(&mut m, &mut enclave, a, &Payload::from_bytes(av))
                .unwrap_or_else(|e| panic!("round {round}: htod a: {e}"));
            s.memcpy_htod(&mut m, &mut enclave, b, &Payload::from_bytes(bv))
                .unwrap_or_else(|e| panic!("round {round}: htod b: {e}"));
            match extra {
                0 => s.memset(&mut m, &mut enclave, c, bytes, 0).expect("memset"),
                1 => s.memcpy_dtod(&mut m, &mut enclave, a, c, bytes).expect("dtod"),
                _ => {}
            }
            s.launch(&mut m, &mut enclave, "matrix.mul", &[a.value(), b.value(), c.value(), N])
                .unwrap_or_else(|e| panic!("round {round}: launch: {e}"));
            s.sync(&mut m, &mut enclave).expect("sync");
        }
        let out = s
            .memcpy_dtoh(&mut m, &mut enclave, c, bytes)
            .unwrap_or_else(|e| panic!("round {round}: dtoh: {e}"));
        results.push(out.bytes().to_vec());
        s.close(&mut m, &mut enclave)
            .unwrap_or_else(|e| panic!("round {round}: close: {e}"));
    }
    // Attribution must reconcile ±0 in both engines — the batched path
    // opens per-command request windows on the enclave side.
    m.trace().obs().check_attribution().expect("attribution reconciles +-0");
    let snapshot = m.trace().obs().snapshot();
    let ledger = snapshot
        .lines()
        .filter(|l| l.trim_start().starts_with("fault.injected"))
        .map(str::to_string)
        .collect();
    let mx = m.trace().metrics();
    EquivRun {
        results,
        injected: mx.counter("fault.injected") + mx.counter("fault.detected"),
        fault_events: m.trace().count(EventKind::Fault),
        ledger,
        wakes: mx.counter("cmdq.wakes"),
        frames: mx.counter("cmdq.frames"),
        snapshot,
    }
}

/// The acceptance sweep: 3 seeds × {none, light, heavy}, sync vs
/// batched — byte-identical results in all 9 cells, reconciled fault
/// accounting, identical ledgers wherever injection counts can agree.
#[test]
fn batched_submission_is_byte_identical_to_sync() {
    for seed in [0xA5E1_0001u64, 0xA5E1_0002, 0xA5E1_0003] {
        let profiles: [(&str, Option<FaultConfig>); 3] = [
            ("none", None),
            ("light", Some(FaultConfig::light())),
            ("heavy", Some(FaultConfig::heavy())),
        ];
        for (tag, cfg) in profiles {
            let sync = run_mix(seed, cfg.clone(), false);
            let batched = run_mix(seed, cfg.clone(), true);
            assert_eq!(
                batched.results, sync.results,
                "batched engine changed GPU results ({tag}, seed {seed:#x})"
            );
            assert!(batched.frames > 0, "batched mode must actually use frames");
            for run in [&sync, &batched] {
                // The canonical tiling: one Fault event per injection
                // plus one per detected real error (e.g. an injected
                // flip surfacing as a device-side integrity failure).
                assert_eq!(
                    run.fault_events, run.injected,
                    "Fault events must tile injected+detected ({tag}, seed {seed:#x})"
                );
            }
            match cfg {
                None => {
                    assert_eq!(sync.injected, 0, "no plan, no faults");
                    assert_eq!(
                        batched.ledger, sync.ledger,
                        "clean-cell ledgers must be identical (both empty)"
                    );
                    assert!(
                        batched.wakes < sync.wakes,
                        "batching must reduce channel wakes ({} vs {}, seed {seed:#x})",
                        batched.wakes,
                        sync.wakes
                    );
                }
                Some(_) => {
                    assert!(sync.injected > 0, "{tag} plan never fired (seed {seed:#x})");
                    assert!(batched.injected > 0, "{tag} plan never fired on batched");
                }
            }
        }
    }
}

/// Same-seed reruns of the *same* engine are fully deterministic: the
/// per-kind fault ledger and the whole metrics snapshot agree line for
/// line (this is the "identical ledgers" guarantee batching preserves).
#[test]
fn same_seed_reruns_have_identical_ledgers_per_mode() {
    for batched in [false, true] {
        let a = run_mix(0xD1FF_5EED, Some(FaultConfig::heavy()), batched);
        let b = run_mix(0xD1FF_5EED, Some(FaultConfig::heavy()), batched);
        assert!(a.injected > 0, "the heavy plan must fire (batched={batched})");
        assert_eq!(
            a.ledger, b.ledger,
            "per-kind fault ledgers diverged across reruns (batched={batched})"
        );
        assert_eq!(
            a.snapshot, b.snapshot,
            "metrics snapshots diverged across reruns (batched={batched})"
        );
    }
}

/// An explicit mixed workflow: interleaving submits, barriers, and
/// late completion pickup. Barrier ops (malloc/dtoh) drain the ring
/// first, so every queued command's effect is visible to them.
#[test]
fn barriers_order_after_queued_commands() {
    let mut m = rig();
    let mut enclave = GpuEnclave::launch(&mut m, GpuEnclaveOptions::default()).expect("launch");
    let mut s = HixSession::connect(&mut m, &mut enclave).expect("connect");
    let a = s.malloc(&mut m, &mut enclave, 4096).expect("malloc");
    let id0 = s.submit_memset(&mut m, &mut enclave, a, 4096, 0x5a).unwrap();
    // The barrier read drains the pending memset before serving.
    let back = s.memcpy_dtoh(&mut m, &mut enclave, a, 4096).expect("dtoh");
    assert!(back.bytes().iter().all(|&x| x == 0x5a), "barrier saw stale bytes");
    let comps = s.take_completions();
    assert_eq!(comps, vec![(id0, CmdStatus::Ok)]);
    // A failing queued command completes with Err, not a flush error.
    let bad = s.submit_launch(&mut m, &mut enclave, "no.such.kernel", &[]).unwrap();
    s.flush(&mut m, &mut enclave).expect("flush survives command errors");
    let comps = s.take_completions();
    assert_eq!(comps.len(), 1);
    assert_eq!(comps[0].0, bad);
    assert!(
        matches!(&comps[0].1, CmdStatus::Err(_)),
        "unknown kernel must fail its own command only"
    );
    s.close(&mut m, &mut enclave).expect("close");
}
