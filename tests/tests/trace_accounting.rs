//! The event trace must attribute virtual time to the right categories
//! during a full secure run — the accounting behind the §5.3.1-style
//! analyses.

use hix_core::{GpuEnclave, GpuEnclaveOptions, HixSession};
use hix_driver::rig::{standard_rig, RigOptions, GPU_BDF};
use hix_driver::Gdev;
use hix_sim::{EventKind, Nanos, Payload};
use hix_workloads::exec::{GdevExec, HixExec};
use hix_workloads::matrix::{MatrixAdd, MatrixMul};
use hix_workloads::{all_kernels, Workload};

#[test]
fn hix_run_charges_gpu_crypto_and_dma() {
    let mut m = standard_rig(RigOptions::default());
    let mut enclave = GpuEnclave::launch(&mut m, GpuEnclaveOptions::default()).unwrap();
    let mut s = HixSession::connect(&mut m, &mut enclave).unwrap();
    let dev = s.malloc(&mut m, &mut enclave, 1 << 20).unwrap();
    m.trace().clear();
    s.memcpy_htod(&mut m, &mut enclave, dev, &Payload::from_bytes(vec![1; 1 << 20]))
        .unwrap();
    let _ = s.memcpy_dtoh(&mut m, &mut enclave, dev, 1 << 20).unwrap();
    assert!(
        m.trace().total(EventKind::GpuCrypto) > Nanos::ZERO,
        "in-GPU crypto kernels must be accounted"
    );
    assert!(
        m.trace().total(EventKind::Dma) > Nanos::ZERO,
        "DMA wire time must be accounted"
    );
    assert!(m.trace().count(EventKind::Mmio) > 0, "MMIO traffic happened");
    // The summary renders every active category.
    let summary = m.trace().summary();
    assert!(summary.contains("gpu-crypto"), "{summary}");
    assert!(summary.contains("dma"), "{summary}");
}

#[test]
fn gdev_run_charges_no_gpu_crypto() {
    let mut m = standard_rig(RigOptions::default());
    let pid = m.create_process();
    let mut gdev = Gdev::open(&mut m, pid, GPU_BDF).unwrap();
    let dev = gdev.malloc(&mut m, 1 << 20).unwrap();
    m.trace().clear();
    gdev.memcpy_htod(&mut m, dev, &Payload::from_bytes(vec![1; 1 << 20]))
        .unwrap();
    let _ = gdev.memcpy_dtoh(&mut m, dev, 1 << 20).unwrap();
    assert_eq!(
        m.trace().total(EventKind::GpuCrypto),
        Nanos::ZERO,
        "the insecure baseline runs no crypto kernels"
    );
    assert!(m.trace().total(EventKind::Dma) > Nanos::ZERO);
}

#[test]
fn figure_harness_runs_emit_no_catchall_events() {
    // Every event in a full figure-style run must carry a precise kind:
    // `Other` is a catch-all for uninstrumented code and `Fault` marks
    // device errors — both must stay at zero on the happy path.
    for workload in [&MatrixAdd as &dyn Workload, &MatrixMul] {
        let n = workload.test_size();

        let mut m = standard_rig(RigOptions {
            kernels: all_kernels(),
            ..RigOptions::default()
        });
        let pid = m.create_process();
        let mut gdev = Gdev::open(&mut m, pid, GPU_BDF).unwrap();
        workload.run(&mut m, &mut GdevExec::new(&mut gdev), n).unwrap();
        gdev.close(&mut m).unwrap();
        assert_eq!(m.trace().count(EventKind::Other), 0, "gdev {}", workload.name());
        assert_eq!(m.trace().count(EventKind::Fault), 0, "gdev {}", workload.name());

        let mut m = standard_rig(RigOptions {
            kernels: all_kernels(),
            ..RigOptions::default()
        });
        let mut enclave = GpuEnclave::launch(&mut m, GpuEnclaveOptions::default()).unwrap();
        let mut s = HixSession::connect(&mut m, &mut enclave).unwrap();
        workload
            .run(&mut m, &mut HixExec::new(&mut s, &mut enclave), n)
            .unwrap();
        s.close(&mut m, &mut enclave).unwrap();
        assert_eq!(m.trace().count(EventKind::Other), 0, "hix {}", workload.name());
        assert_eq!(m.trace().count(EventKind::Fault), 0, "hix {}", workload.name());
    }
}

#[test]
fn injected_faults_emit_fault_kind_events_and_recovery_reconciles() {
    // Under an aggressive fault plan the accounting contract tightens:
    // every injection is a `Fault`-kind event (the `Other` catch-all
    // stays empty even on the unhappy path), the per-kind injection
    // counters tile the total exactly, and the recovery span category
    // reconciles with the recovery counters.
    use hix_sim::fault::{FaultConfig, FaultPlan};
    let mut m = standard_rig(RigOptions::default());
    m.trace().set_recording(true);
    m.set_fault_plan(FaultPlan::new(0xFA17_ACC7, FaultConfig::heavy()));
    let mut enclave = GpuEnclave::launch(&mut m, GpuEnclaveOptions::default()).unwrap();
    let mut s = HixSession::connect(&mut m, &mut enclave).unwrap();
    let dev = s.malloc(&mut m, &mut enclave, 64 << 10).unwrap();
    s.memcpy_htod(&mut m, &mut enclave, dev, &Payload::from_bytes(vec![7; 64 << 10]))
        .unwrap();
    let back = s.memcpy_dtoh(&mut m, &mut enclave, dev, 64 << 10).unwrap();
    assert_eq!(back.bytes(), &vec![7u8; 64 << 10][..], "recovery must preserve the data");
    s.close(&mut m, &mut enclave).unwrap();

    let mx = m.trace().metrics();
    let injected = mx.counter("fault.injected");
    assert!(injected > 0, "the heavy plan must fire on a transfer workload");
    assert_eq!(
        m.trace().count(EventKind::Fault),
        injected,
        "exactly one Fault event per injection"
    );
    assert_eq!(
        m.trace().count(EventKind::Other),
        0,
        "fault handling must never fall back to the Other catch-all"
    );
    let per_kind: u64 = [
        "drop", "duplicate", "reorder", "delay", "corrupt", "dma_flip", "cfg_storm", "restart",
    ]
    .iter()
    .map(|kind| mx.counter(&format!("fault.injected.{kind}")))
    .sum();
    assert_eq!(per_kind, injected, "the per-kind ledger must tile the total");

    // One span per retransmit attempt, one per re-key escalation.
    let retries = mx.counter("recovery.retries");
    let rekeys = mx.counter("recovery.rekeys");
    assert!(retries > 0, "a heavy plan on transfers must force retransmissions");
    let spans = m.trace().obs().spans();
    let retransmit_spans = spans
        .iter()
        .filter(|s| s.category == "recovery" && s.name == "retransmit")
        .count() as u64;
    let rekey_spans = spans
        .iter()
        .filter(|s| s.category == "recovery" && s.name == "rekey")
        .count() as u64;
    assert_eq!(
        retransmit_spans, retries,
        "one recovery span per retransmit attempt"
    );
    assert_eq!(rekey_spans, rekeys, "one recovery span per re-key escalation");
    let snapshot = m.trace().obs().snapshot();
    assert!(
        snapshot.contains("recovery.retries_per_op"),
        "the retry histogram must appear in the snapshot:\n{snapshot}"
    );
    assert!(
        snapshot.contains("recovery.backoff_ns"),
        "the backoff histogram must appear in the snapshot:\n{snapshot}"
    );
}

#[test]
fn gpu_fault_ledger_tiles_injected_total_and_watchdog_spans_reconcile() {
    // The device-fault ledger mirrors the channel one: every injected
    // GPU fault bumps `fault.injected`, exactly one per-kind
    // `fault.injected.gpu.*` counter, and emits exactly one
    // `Fault`-kind event. Watchdog work is Security/span territory —
    // one `watchdog/recover` span per recovery incident, one
    // `watchdog/secure_reset` span per reset — and never leaks into
    // the `Other` catch-all.
    use hix_sim::fault::{FaultConfig, FaultPlan};
    let mut m = standard_rig(RigOptions {
        kernels: all_kernels(),
        ..RigOptions::default()
    });
    m.trace().set_recording(true);
    m.set_fault_plan(FaultPlan::new(0xFA17_6B0B, FaultConfig::gpu_heavy()));
    let mut enclave = GpuEnclave::launch(
        &mut m,
        GpuEnclaveOptions {
            // The repeat-offender policy has its own tests; here a
            // wedge-heavy plan must not evict the instrumented session.
            evict_after: u32::MAX,
            ..GpuEnclaveOptions::default()
        },
    )
    .unwrap();
    // Several short-journal rounds: enough command draws to trip the
    // watchdog at heavy rates while keeping each replay cheap.
    for _ in 0..4 {
        let mut s = HixSession::connect(&mut m, &mut enclave).unwrap();
        s.load_module(&mut m, &mut enclave, "matrix.mul").unwrap();
        let n = 16u64;
        let bytes = n * n * 4;
        let a = s.malloc(&mut m, &mut enclave, bytes).unwrap();
        let b = s.malloc(&mut m, &mut enclave, bytes).unwrap();
        let c = s.malloc(&mut m, &mut enclave, bytes).unwrap();
        let ones: Vec<u8> = (0..n * n).flat_map(|_| 1i32.to_le_bytes()).collect();
        s.memcpy_htod(&mut m, &mut enclave, a, &Payload::from_bytes(ones.clone()))
            .unwrap();
        s.memcpy_htod(&mut m, &mut enclave, b, &Payload::from_bytes(ones))
            .unwrap();
        s.launch(&mut m, &mut enclave, "matrix.mul", &[a.value(), b.value(), c.value(), n])
            .unwrap();
        s.sync(&mut m, &mut enclave).unwrap();
        let back = s.memcpy_dtoh(&mut m, &mut enclave, c, bytes).unwrap();
        let expect: Vec<u8> = (0..n * n).flat_map(|_| (n as i32).to_le_bytes()).collect();
        assert_eq!(back.bytes(), &expect[..], "recovery must preserve the result");
        s.close(&mut m, &mut enclave).unwrap();
    }

    let mx = m.trace().metrics();
    let injected = mx.counter("fault.injected");
    let gpu_kinds = ["gpu.hang", "gpu.wedge", "gpu.lost_completion", "gpu.vram_flip", "gpu.spurious"];
    let channel_kinds =
        ["drop", "duplicate", "reorder", "delay", "corrupt", "dma_flip", "cfg_storm", "restart"];
    let gpu_injected: u64 = gpu_kinds
        .iter()
        .map(|kind| mx.counter(&format!("fault.injected.{kind}")))
        .sum();
    let per_kind: u64 = channel_kinds
        .iter()
        .map(|kind| mx.counter(&format!("fault.injected.{kind}")))
        .sum::<u64>()
        + gpu_injected;
    assert!(gpu_injected > 0, "the gpu-heavy plan must inject device faults");
    assert_eq!(per_kind, injected, "the per-kind ledger must tile the total exactly");
    // One Fault event per injection, plus one per *detected* real error
    // (an injected bit-flip in a sealed staging buffer surfaces as a
    // device-side integrity failure — a second, legitimate event for
    // the same injection).
    assert_eq!(
        m.trace().count(EventKind::Fault),
        injected + mx.counter("fault.detected"),
        "Fault events must reconcile with the injected + detected ledgers"
    );
    assert_eq!(m.trace().count(EventKind::Other), 0, "no catch-all events");

    let spans = m.trace().obs().spans();
    let recover_spans = spans
        .iter()
        .filter(|s| s.category == "watchdog" && s.name == "recover")
        .count() as u64;
    let reset_spans = spans
        .iter()
        .filter(|s| s.category == "watchdog" && s.name == "secure_reset")
        .count() as u64;
    // `watchdog.recoveries` counts rebuild *rounds* (a mid-replay fault
    // restarts the round inside one incident); the span wraps the whole
    // incident, so it pairs with completed replays when every incident
    // succeeds — which this test requires via the unwraps above.
    assert_eq!(
        recover_spans,
        mx.counter("watchdog.replays_completed"),
        "one watchdog span per successfully recovered incident"
    );
    assert!(
        mx.counter("watchdog.recoveries") >= recover_spans,
        "rebuild rounds can only exceed incidents, never undercount them"
    );
    assert_eq!(
        reset_spans,
        mx.counter("watchdog.resets"),
        "one secure_reset span per full device reset"
    );
    assert!(
        mx.counter("watchdog.hangs_detected") > 0,
        "a gpu-heavy transfer+launch workload must trip the watchdog"
    );
    let snapshot = m.trace().obs().snapshot();
    assert!(
        snapshot.contains("watchdog.recovery_latency_ns"),
        "the recovery-latency histogram must appear in the snapshot:\n{snapshot}"
    );
}

#[test]
fn span_accounting_reconciles_with_legacy_totals() {
    // The obs span accumulator IS the accounting source of truth: for
    // every category the legacy `Trace::total`/`count` answers and the
    // `span.ns.*`/`span.count.*` snapshot lines must agree exactly.
    let mut m = standard_rig(RigOptions {
        kernels: all_kernels(),
        ..RigOptions::default()
    });
    let mut enclave = GpuEnclave::launch(&mut m, GpuEnclaveOptions::default()).unwrap();
    let mut s = HixSession::connect(&mut m, &mut enclave).unwrap();
    MatrixMul
        .run(&mut m, &mut HixExec::new(&mut s, &mut enclave), MatrixMul.test_size())
        .unwrap();
    s.close(&mut m, &mut enclave).unwrap();

    let snapshot = m.trace().obs().snapshot();
    for kind in EventKind::ALL {
        let ns = m.trace().total(kind).as_nanos();
        let count = m.trace().count(kind);
        assert_eq!(m.trace().obs().category_ns(kind.as_str()), ns, "{kind}");
        assert_eq!(m.trace().obs().category_count(kind.as_str()), count, "{kind}");
        if count > 0 {
            assert!(
                snapshot.contains(&format!("span.ns.{kind} {ns}")),
                "snapshot must carry the exact {kind} total:\n{snapshot}"
            );
        }
    }
}

#[test]
fn request_attribution_reconciles_on_the_real_stack() {
    // The request attributor is a second view over the same charges:
    // with attribution (and faults) on, attributed + unattributed must
    // equal the category accumulator exactly, every request's critical
    // path must fit inside its end-to-end window, and the SLO table
    // must tile the request population.
    use hix_sim::fault::{FaultConfig, FaultPlan};
    let mut m = standard_rig(RigOptions {
        kernels: all_kernels(),
        ..RigOptions::default()
    });
    m.set_fault_plan(FaultPlan::new(0xA77B, FaultConfig::heavy()));
    m.trace().obs().set_attributing(true);
    let mut enclave = GpuEnclave::launch(&mut m, GpuEnclaveOptions::default()).unwrap();
    let mut s = HixSession::connect(&mut m, &mut enclave).unwrap();
    MatrixMul
        .run(&mut m, &mut HixExec::new(&mut s, &mut enclave), MatrixMul.test_size())
        .unwrap();
    s.close(&mut m, &mut enclave).unwrap();

    let obs = m.trace().obs();
    obs.check_attribution().expect("attribution reconciles +-0");
    let requests = obs.requests();
    assert!(requests.len() >= 4, "connect + transfers + launch + close");
    for rec in &requests {
        let path = hix_obs::critical_path_ns(rec);
        assert!(
            path <= rec.e2e_ns(),
            "critical path {} ns exceeds e2e {} ns for {}",
            path,
            rec.e2e_ns(),
            rec.name
        );
    }
    // Something must actually be charged inside requests: the secure
    // transfers charge crypto and DMA to their own request windows.
    assert!(
        requests.iter().any(|r| r.charged_ns() > 0),
        "no request accumulated any charge"
    );
    let slo = hix_obs::slo_table(&requests);
    assert_eq!(
        slo.iter().map(|r| r.requests).sum::<u64>(),
        requests.len() as u64,
        "SLO rows must tile the request population"
    );
    // Attribution off (the default) keeps begin_request inert: the
    // unattributed ledger still reconciles on a fresh machine.
    let m2 = standard_rig(RigOptions::default());
    assert!(m2.trace().obs().begin_request(0, 1, "noop").is_none());
    m2.trace().obs().check_attribution().expect("reconciles while disabled");
}

#[test]
fn aborted_batches_leak_no_open_spans() {
    // Span hygiene under TDR mid-batch: a gpu-heavy plan fires hangs
    // and context kills while explicit batched frames are in flight.
    // `flush` aborts the interrupted batch tail, recovers through the
    // watchdog, and resubmits — and afterwards *every* span must be
    // closed (the enclave-side `cmdq.submit` frame span, the
    // per-command request windows, the watchdog recovery spans) and
    // request attribution must still reconcile ±0.
    use hix_core::CmdStatus;
    use hix_sim::fault::{FaultConfig, FaultPlan};
    let mut m = standard_rig(RigOptions {
        kernels: all_kernels(),
        ..RigOptions::default()
    });
    m.trace().set_recording(true);
    m.trace().obs().set_attributing(true);
    m.set_fault_plan(FaultPlan::new(0xBA7C_4B02, FaultConfig::gpu_heavy()));
    let mut enclave = GpuEnclave::launch(
        &mut m,
        GpuEnclaveOptions {
            evict_after: u32::MAX,
            ..GpuEnclaveOptions::default()
        },
    )
    .unwrap();
    for round in 0..6 {
        let mut s = HixSession::connect(&mut m, &mut enclave).unwrap();
        let n = 16u64;
        let bytes = n * n * 4;
        let a = s.malloc(&mut m, &mut enclave, bytes).unwrap();
        let b = s.malloc(&mut m, &mut enclave, bytes).unwrap();
        let c = s.malloc(&mut m, &mut enclave, bytes).unwrap();
        let ones: Vec<u8> = (0..n * n).flat_map(|_| 1i32.to_le_bytes()).collect();
        let mut ids = Vec::new();
        ids.push(s.submit_load_module(&mut m, &mut enclave, "matrix.mul").unwrap());
        ids.push(s.submit_htod(&mut m, &mut enclave, a, &Payload::from_bytes(ones.clone())).unwrap());
        ids.push(s.submit_htod(&mut m, &mut enclave, b, &Payload::from_bytes(ones)).unwrap());
        ids.push(
            s.submit_launch(&mut m, &mut enclave, "matrix.mul", &[
                a.value(),
                b.value(),
                c.value(),
                n,
            ])
            .unwrap(),
        );
        ids.push(s.submit_sync(&mut m, &mut enclave).unwrap());
        s.flush(&mut m, &mut enclave)
            .unwrap_or_else(|e| panic!("round {round}: flush under gpu faults: {e}"));
        let comps = s.take_completions();
        assert_eq!(comps.iter().map(|(id, _)| *id).collect::<Vec<_>>(), ids);
        for (id, status) in &comps {
            assert_eq!(status, &CmdStatus::Ok, "round {round}: command {id} failed");
        }
        let back = s.memcpy_dtoh(&mut m, &mut enclave, c, bytes).unwrap();
        let expect: Vec<u8> = (0..n * n).flat_map(|_| (n as i32).to_le_bytes()).collect();
        assert_eq!(back.bytes(), &expect[..], "recovery must preserve the result");
        s.close(&mut m, &mut enclave).unwrap();
    }
    let mx = m.trace().metrics();
    assert!(
        mx.counter("watchdog.hangs_detected") > 0,
        "the gpu-heavy plan must trip the watchdog mid-run"
    );
    assert!(
        mx.counter("cmdq.batch_aborts") > 0,
        "at least one TDR must land mid-batch for this test to bite"
    );
    let spans = m.trace().obs().spans();
    let open: Vec<_> = spans.iter().filter(|s| s.is_open()).collect();
    assert!(open.is_empty(), "aborted batches leaked open spans: {open:?}");
    m.trace()
        .obs()
        .check_attribution()
        .expect("attribution reconciles +-0 after mid-batch TDRs");
}

#[test]
fn security_events_fire_on_lockdown_and_denials() {
    let mut m = standard_rig(RigOptions::default());
    m.trace().clear();
    let _enclave = GpuEnclave::launch(&mut m, GpuEnclaveOptions::default()).unwrap();
    let after_launch = m.trace().count(EventKind::Security);
    assert!(after_launch >= 2, "EGCREATE + lockdown + init events");
    // A denied attacker access adds one more.
    let attacker = m.create_process();
    let va = hix_driver::driver::os_map_bar0(&mut m, attacker, GPU_BDF, 1);
    let _ = m.read(attacker, va, &mut [0u8; 8]);
    assert!(m.trace().count(EventKind::Security) > after_launch);
}
