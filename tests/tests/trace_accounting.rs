//! The event trace must attribute virtual time to the right categories
//! during a full secure run — the accounting behind the §5.3.1-style
//! analyses.

use hix_core::{GpuEnclave, GpuEnclaveOptions, HixSession};
use hix_driver::rig::{standard_rig, RigOptions, GPU_BDF};
use hix_driver::Gdev;
use hix_sim::{EventKind, Nanos, Payload};

#[test]
fn hix_run_charges_gpu_crypto_and_dma() {
    let mut m = standard_rig(RigOptions::default());
    let mut enclave = GpuEnclave::launch(&mut m, GpuEnclaveOptions::default()).unwrap();
    let mut s = HixSession::connect(&mut m, &mut enclave).unwrap();
    let dev = s.malloc(&mut m, &mut enclave, 1 << 20).unwrap();
    m.trace().clear();
    s.memcpy_htod(&mut m, &mut enclave, dev, &Payload::from_bytes(vec![1; 1 << 20]))
        .unwrap();
    let _ = s.memcpy_dtoh(&mut m, &mut enclave, dev, 1 << 20).unwrap();
    assert!(
        m.trace().total(EventKind::GpuCrypto) > Nanos::ZERO,
        "in-GPU crypto kernels must be accounted"
    );
    assert!(
        m.trace().total(EventKind::Dma) > Nanos::ZERO,
        "DMA wire time must be accounted"
    );
    assert!(m.trace().count(EventKind::Mmio) > 0, "MMIO traffic happened");
    // The summary renders every active category.
    let summary = m.trace().summary();
    assert!(summary.contains("gpu-crypto"), "{summary}");
    assert!(summary.contains("dma"), "{summary}");
}

#[test]
fn gdev_run_charges_no_gpu_crypto() {
    let mut m = standard_rig(RigOptions::default());
    let pid = m.create_process();
    let mut gdev = Gdev::open(&mut m, pid, GPU_BDF).unwrap();
    let dev = gdev.malloc(&mut m, 1 << 20).unwrap();
    m.trace().clear();
    gdev.memcpy_htod(&mut m, dev, &Payload::from_bytes(vec![1; 1 << 20]))
        .unwrap();
    let _ = gdev.memcpy_dtoh(&mut m, dev, 1 << 20).unwrap();
    assert_eq!(
        m.trace().total(EventKind::GpuCrypto),
        Nanos::ZERO,
        "the insecure baseline runs no crypto kernels"
    );
    assert!(m.trace().total(EventKind::Dma) > Nanos::ZERO);
}

#[test]
fn security_events_fire_on_lockdown_and_denials() {
    let mut m = standard_rig(RigOptions::default());
    m.trace().clear();
    let _enclave = GpuEnclave::launch(&mut m, GpuEnclaveOptions::default()).unwrap();
    let after_launch = m.trace().count(EventKind::Security);
    assert!(after_launch >= 2, "EGCREATE + lockdown + init events");
    // A denied attacker access adds one more.
    let attacker = m.create_process();
    let va = hix_driver::driver::os_map_bar0(&mut m, attacker, GPU_BDF, 1);
    let _ = m.read(attacker, va, &mut [0u8; 8]);
    assert!(m.trace().count(EventKind::Security) > after_launch);
}
