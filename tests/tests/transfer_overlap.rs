//! Timing tests for the shared crypto/DMA transfer pipeline
//! (`hix_sim::CryptoDmaPipeline` wired into the GPU enclave): inside a
//! batched frame, consecutive secure transfers overlap chunkwise on the
//! shared enclave-crypto and DMA engines instead of serializing their
//! closed forms, and the engine cursors are one machine-wide resource —
//! every session of an enclave books the same pair.

use hix_core::{GpuEnclave, GpuEnclaveOptions, HixSession};
use hix_driver::rig::{standard_rig, RigOptions};
use hix_platform::Machine;
use hix_sim::{Nanos, Payload};
use hix_workloads::all_kernels;

fn rig() -> Machine {
    standard_rig(RigOptions {
        kernels: all_kernels(),
        ..RigOptions::default()
    })
}

/// Two pipeline-chunk-sized transfers per direction: big enough that the
/// hidden crypto fill / DMA tail dwarfs IPC and MMIO overheads.
fn transfer_len(m: &Machine) -> u64 {
    2 * m.model().pipeline_chunk
}

#[test]
fn batched_frames_hide_gpu_work_under_the_transfer_pipeline() {
    // A frame's sealed HtoD chunks are staged at frame-build time, so
    // the transfer's crypto fill starts counting from frame arrival —
    // GPU-side commands riding the same frame execute *under* it
    // instead of pushing the closed form back. Self-calibrating: time a
    // big DtoD frame and an HtoD frame separately, then a combined
    // frame, and require the combined frame to hide at least half the
    // DtoD (the old serialized pin paid for both in full).
    let mut m = rig();
    let mut enclave = GpuEnclave::launch(&mut m, GpuEnclaveOptions::default()).expect("launch");
    let mut s = HixSession::connect(&mut m, &mut enclave).expect("connect");
    let len = transfer_len(&m);
    let copy_len = 64 << 20; // ~0.9 ms of VRAM traffic, >> IPC noise
    let a = s.malloc(&mut m, &mut enclave, len).expect("malloc a");
    let b = s.malloc(&mut m, &mut enclave, len).expect("malloc b");
    let big_src = s.malloc(&mut m, &mut enclave, copy_len).expect("malloc src");
    let big_dst = s.malloc(&mut m, &mut enclave, copy_len).expect("malloc dst");
    let av = vec![0xA5u8; len as usize];
    let bv = vec![0x5Au8; len as usize];

    // Calibration frame 1: the DtoD alone.
    s.submit_dtod(&mut m, &mut enclave, big_src, big_dst, copy_len).unwrap();
    let before = m.clock().now();
    s.flush(&mut m, &mut enclave).expect("flush dtod");
    let t_dtod = m.clock().now() - before;

    // Calibration frame 2: the transfer alone.
    s.submit_htod(&mut m, &mut enclave, a, &Payload::from_bytes(av.clone())).unwrap();
    let before = m.clock().now();
    s.flush(&mut m, &mut enclave).expect("flush htod");
    let t_htod = m.clock().now() - before;

    // Combined frame: DtoD first, then the transfer.
    s.submit_dtod(&mut m, &mut enclave, big_src, big_dst, copy_len).unwrap();
    s.submit_htod(&mut m, &mut enclave, b, &Payload::from_bytes(bv.clone())).unwrap();
    let before = m.clock().now();
    s.flush(&mut m, &mut enclave).expect("flush combined");
    let t_both = m.clock().now() - before;

    assert!(
        t_both >= t_htod,
        "the transfer itself cannot get shorter: {t_both} < {t_htod}"
    );
    assert!(
        t_both + t_dtod / 2 < t_dtod + t_htod,
        "the frame must hide the DtoD under the transfer pipeline: \
         combined {t_both}, serialized {t_dtod} + {t_htod}"
    );

    // The functional plane is unaffected: the bytes landed.
    let back_a = s.memcpy_dtoh(&mut m, &mut enclave, a, len).expect("dtoh a");
    let back_b = s.memcpy_dtoh(&mut m, &mut enclave, b, len).expect("dtoh b");
    assert_eq!(back_a.bytes(), &av[..]);
    assert_eq!(back_b.bytes(), &bv[..]);
    s.close(&mut m, &mut enclave).expect("close");
}

#[test]
fn single_transfer_frames_keep_the_closed_form() {
    // With idle engines the pipeline booking degenerates to exactly the
    // `hix_htod` closed form, so a lone transfer (the synchronous path
    // wraps one command per frame) is timed as before.
    let mut m = rig();
    let mut enclave = GpuEnclave::launch(&mut m, GpuEnclaveOptions::default()).expect("launch");
    let mut s = HixSession::connect(&mut m, &mut enclave).expect("connect");
    let len = transfer_len(&m);
    let a = s.malloc(&mut m, &mut enclave, len).expect("malloc");
    let before = m.clock().now();
    s.memcpy_htod(&mut m, &mut enclave, a, &Payload::from_bytes(vec![7u8; len as usize]))
        .expect("htod");
    let elapsed = m.clock().now() - before;
    assert_eq!(
        elapsed,
        m.model().ipc_roundtrip + m.model().hix_htod(len),
        "sync single-copy timing must stay pinned to the closed form"
    );
    s.close(&mut m, &mut enclave).expect("close");
}

#[test]
fn engines_are_shared_across_sessions() {
    // One enclave, two sessions: both sessions' transfers book the same
    // pipeline instance, so the engine cursors advance monotonically
    // across sessions — the transfer plane is a machine resource, not a
    // per-session one.
    let mut m = rig();
    let mut enclave = GpuEnclave::launch(&mut m, GpuEnclaveOptions::default()).expect("launch");
    let mut s1 = HixSession::connect(&mut m, &mut enclave).expect("connect s1");
    let mut s2 = HixSession::connect(&mut m, &mut enclave).expect("connect s2");
    let len = transfer_len(&m);
    let a1 = s1.malloc(&mut m, &mut enclave, len).expect("malloc s1");
    let a2 = s2.malloc(&mut m, &mut enclave, len).expect("malloc s2");

    assert_eq!(enclave.xfer_pipeline().dma_free(), Nanos::ZERO, "no booking yet");

    s1.memcpy_htod(&mut m, &mut enclave, a1, &Payload::from_bytes(vec![1u8; len as usize]))
        .expect("htod s1");
    let after_s1 = (enclave.xfer_pipeline().crypt_free(), enclave.xfer_pipeline().dma_free());
    assert!(after_s1.0 > Nanos::ZERO && after_s1.1 > after_s1.0);

    s2.memcpy_htod(&mut m, &mut enclave, a2, &Payload::from_bytes(vec![2u8; len as usize]))
        .expect("htod s2");
    let after_s2 = (enclave.xfer_pipeline().crypt_free(), enclave.xfer_pipeline().dma_free());
    assert!(
        after_s2.0 > after_s1.0 && after_s2.1 > after_s1.1,
        "session 2's transfer must book the same engines session 1 used"
    );

    // Readbacks book the same engines in the other direction.
    let before_dtoh = enclave.xfer_pipeline().crypt_free();
    s1.memcpy_dtoh(&mut m, &mut enclave, a1, len).expect("dtoh s1");
    assert!(
        enclave.xfer_pipeline().crypt_free() > before_dtoh,
        "DtoH must book the shared crypto engine too"
    );

    s1.close(&mut m, &mut enclave).expect("close s1");
    s2.close(&mut m, &mut enclave).expect("close s2");
}
