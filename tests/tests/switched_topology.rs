//! Full HIX stack with the GPU behind a PCIe switch: the lockdown must
//! freeze the root port *and both switch ports* (§4.3.2), and the whole
//! secure data path must work unchanged.

use hix_core::{GpuEnclave, GpuEnclaveOptions, HixSession};
use hix_driver::rig::{switched_rig, RigOptions, PORT_BDF, SWITCHED_GPU_BDF};
use hix_pcie::addr::Bdf;
use hix_pcie::config::offsets;
use hix_pcie::fabric::PcieError;
use hix_sim::Payload;

fn launch() -> (hix_platform::Machine, GpuEnclave) {
    let mut m = switched_rig(RigOptions::default());
    let enclave = GpuEnclave::launch(
        &mut m,
        GpuEnclaveOptions {
            bdf: SWITCHED_GPU_BDF,
            ..Default::default()
        },
    )
    .expect("enclave over switch");
    (m, enclave)
}

#[test]
fn secure_path_works_through_a_switch() {
    let (mut m, mut enclave) = launch();
    let mut s = HixSession::connect(&mut m, &mut enclave).unwrap();
    let dev = s.malloc(&mut m, &mut enclave, 8192).unwrap();
    let data = vec![0x3c; 8192];
    s.memcpy_htod(&mut m, &mut enclave, dev, &Payload::from_bytes(data.clone()))
        .unwrap();
    let back = s.memcpy_dtoh(&mut m, &mut enclave, dev, 8192).unwrap();
    assert_eq!(back.bytes(), &data[..]);
}

#[test]
fn lockdown_freezes_root_port_and_both_switch_ports() {
    let (mut m, enclave) = launch();
    for bridge in [
        PORT_BDF,
        Bdf::new(1, 0, 0),
        Bdf::new(2, 0, 0),
        SWITCHED_GPU_BDF,
    ] {
        assert_eq!(
            m.config_write(bridge, offsets::MEMORY_WINDOW, 0),
            Err(PcieError::LockedDown(bridge)),
            "{bridge} must be frozen on the locked path"
        );
    }
    assert!(enclave.verify_path(&m));
}

#[test]
fn graceful_release_unfreezes_the_whole_chain() {
    let (mut m, enclave) = launch();
    enclave.shutdown(&mut m).unwrap();
    for bridge in [PORT_BDF, Bdf::new(1, 0, 0), Bdf::new(2, 0, 0)] {
        m.config_write(bridge, offsets::BUS_NUMBERS + 0x1c, 0)
            .unwrap_or_else(|e| panic!("{bridge}: {e}"));
    }
    // Re-launch works.
    GpuEnclave::launch(
        &mut m,
        GpuEnclaveOptions {
            bdf: SWITCHED_GPU_BDF,
            ..Default::default()
        },
    )
    .unwrap();
}

#[test]
fn switch_window_attack_blocked_after_lockdown() {
    // Narrowing the downstream port's window would make the GPU
    // unreachable / redirectable mid-path; the lockdown discards it.
    let (mut m, enclave) = launch();
    let err = m.config_write(Bdf::new(2, 0, 0), offsets::MEMORY_WINDOW, 0x0000_fff0);
    assert!(matches!(err, Err(PcieError::LockedDown(_))));
    // The trusted path keeps working.
    assert!(enclave.verify_path(&m));
}
