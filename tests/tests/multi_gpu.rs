//! Multi-GPU (no peer-to-peer, §5.6/§7): each GPU is owned by its own
//! GPU enclave; ownership, lockdown, and sessions are independent.

use hix_core::{GpuEnclave, GpuEnclaveOptions, HixSession};
use hix_crypto::sha256;
use hix_driver::rig::{standard_rig, RigOptions, GPU2_BDF, GPU_BDF};
use hix_gpu::device::{build_bios, GpuConfig};
use hix_platform::hix::HixError;
use hix_core::HixCoreError;
use hix_sim::Payload;

fn two_gpu_rig() -> hix_platform::Machine {
    standard_rig(RigOptions {
        second_gpu: true,
        ..RigOptions::default()
    })
}

fn gpu2_options() -> GpuEnclaveOptions {
    GpuEnclaveOptions {
        bdf: GPU2_BDF,
        // The second GPU carries a different (but genuine) BIOS.
        expected_bios: Some(sha256::digest(&build_bios(
            GpuConfig::default().seed.wrapping_add(1),
        ))),
        seed: b"gpu-enclave-2".to_vec(),
        ..Default::default()
    }
}

#[test]
fn each_gpu_gets_its_own_enclave() {
    let mut m = two_gpu_rig();
    let enclave1 = GpuEnclave::launch(&mut m, GpuEnclaveOptions::default()).unwrap();
    let enclave2 = GpuEnclave::launch(&mut m, gpu2_options()).unwrap();
    assert_eq!(enclave1.bdf(), GPU_BDF);
    assert_eq!(enclave2.bdf(), GPU2_BDF);
    assert!(m.hix_state().gecs(GPU_BDF).is_some());
    assert!(m.hix_state().gecs(GPU2_BDF).is_some());
}

#[test]
fn one_enclave_cannot_own_two_gpus() {
    // §4.2.1: "no GPU is registered to two GPU enclaves at the same
    // time" — and the reproduction also enforces one GPU per enclave.
    let mut m = two_gpu_rig();
    let enclave1 = GpuEnclave::launch(&mut m, GpuEnclaveOptions::default()).unwrap();
    let err = m.egcreate(enclave1.pid(), GPU2_BDF);
    assert!(matches!(err, Err(HixError::OwnerBusy(_))));
}

#[test]
fn wrong_bios_pin_rejects_second_gpu() {
    let mut m = two_gpu_rig();
    // Pin GPU1's BIOS while binding GPU2: must be refused.
    let err = GpuEnclave::launch(
        &mut m,
        GpuEnclaveOptions {
            bdf: GPU2_BDF,
            expected_bios: None, // default = GPU1's digest
            seed: b"x".to_vec(),
            ..Default::default()
        },
    );
    assert!(matches!(err, Err(HixCoreError::BiosMismatch)));
    // With the right pin it works.
    GpuEnclave::launch(&mut m, gpu2_options()).unwrap();
}

#[test]
fn sessions_on_both_gpus_roundtrip_independently() {
    let mut m = two_gpu_rig();
    let mut enclave1 = GpuEnclave::launch(&mut m, GpuEnclaveOptions::default()).unwrap();
    let mut enclave2 = GpuEnclave::launch(&mut m, gpu2_options()).unwrap();
    let mut s1 = HixSession::connect_with(&mut m, &mut enclave1, 1 << 20, b"u1").unwrap();
    let mut s2 = HixSession::connect_with(&mut m, &mut enclave2, 1 << 20, b"u2").unwrap();
    let d1 = s1.malloc(&mut m, &mut enclave1, 4096).unwrap();
    let d2 = s2.malloc(&mut m, &mut enclave2, 4096).unwrap();
    s1.memcpy_htod(&mut m, &mut enclave1, d1, &Payload::from_bytes(vec![0xA1; 4096]))
        .unwrap();
    s2.memcpy_htod(&mut m, &mut enclave2, d2, &Payload::from_bytes(vec![0xB2; 4096]))
        .unwrap();
    assert!(s1
        .memcpy_dtoh(&mut m, &mut enclave1, d1, 4096)
        .unwrap()
        .bytes()
        .iter()
        .all(|&b| b == 0xA1));
    assert!(s2
        .memcpy_dtoh(&mut m, &mut enclave2, d2, 4096)
        .unwrap()
        .bytes()
        .iter()
        .all(|&b| b == 0xB2));
}

#[test]
fn shared_root_port_stays_locked_until_both_release() {
    use hix_driver::rig::PORT_BDF;
    use hix_pcie::config::offsets;
    let mut m = two_gpu_rig();
    let enclave1 = GpuEnclave::launch(&mut m, GpuEnclaveOptions::default()).unwrap();
    let enclave2 = GpuEnclave::launch(&mut m, gpu2_options()).unwrap();
    // One enclave releases; the port must stay locked for the other.
    enclave1.shutdown(&mut m).unwrap();
    assert!(
        m.config_write(PORT_BDF, offsets::MEMORY_WINDOW, 0).is_err(),
        "port still on a locked path (GPU2)"
    );
    // GPU1's own registers are writable again though.
    m.config_write(GPU_BDF, offsets::BAR0, 0xc000_0000).unwrap();
    // After the second release everything unlocks.
    enclave2.shutdown(&mut m).unwrap();
    m.config_write(PORT_BDF, offsets::MEMORY_WINDOW, 0xfff0_0000)
        .unwrap();
}

#[test]
fn switched_shared_bridges_stay_locked_until_the_last_shard_releases() {
    use hix_driver::rig::fabric_rig;
    use hix_pcie::addr::Bdf;
    use hix_pcie::config::offsets;
    // Two GPUs behind ONE switch: the root port AND the switch upstream
    // port sit on both routing paths; each GPU's downstream port sits
    // on exactly one. Release must be per-path.
    let (mut m, topo) = fabric_rig(RigOptions::default(), 2, 2);
    assert_eq!(topo.switches.len(), 1, "one switch carries both GPUs");
    let upstream = topo.switches[0];
    let root_port = Bdf::new(0, 1, 0);
    // Downstream ports live on the switch's internal bus, one function
    // slot per fanout position.
    let down = |i: u8| Bdf::new(upstream.bus + 1, i, 0);
    let mk = |i: usize| GpuEnclaveOptions {
        bdf: topo.gpus[i].bdf,
        expected_bios: Some(sha256::digest(&build_bios(topo.gpus[i].bios_seed))),
        seed: format!("switched-{i}").into_bytes(),
        ..Default::default()
    };
    let enclave1 = GpuEnclave::launch(&mut m, mk(0)).unwrap();
    let enclave2 = GpuEnclave::launch(&mut m, mk(1)).unwrap();
    for bdf in [root_port, upstream, down(0), down(1)] {
        assert!(
            m.config_write(bdf, offsets::MEMORY_WINDOW, 0).is_err(),
            "{bdf:?} must be locked while both shards hold the path"
        );
    }
    // Shard 0 releases: its OWN downstream port unlocks, but every
    // bridge still on shard 1's path stays locked.
    enclave1.shutdown(&mut m).unwrap();
    m.config_write(down(0), offsets::MEMORY_WINDOW, 0xfff0_0000)
        .unwrap();
    for bdf in [root_port, upstream, down(1)] {
        assert!(
            m.config_write(bdf, offsets::MEMORY_WINDOW, 0).is_err(),
            "{bdf:?} is on the surviving shard's path and must stay locked"
        );
    }
    // The surviving shard's MMIO path still verifies end to end.
    assert!(enclave2.verify_path(&m));
    // Last shard out unlocks the shared prefix.
    enclave2.shutdown(&mut m).unwrap();
    for bdf in [root_port, upstream, down(1)] {
        m.config_write(bdf, offsets::MEMORY_WINDOW, 0xfff0_0000)
            .unwrap();
    }
}

#[test]
fn termination_notice_reaches_user_sessions() {
    // Both GPUs, one enclave each, one session each: a termination
    // notice is scoped to the terminating enclave's own sessions.
    let mut m = two_gpu_rig();
    let mut enclave1 = GpuEnclave::launch(&mut m, GpuEnclaveOptions::default()).unwrap();
    let mut enclave2 = GpuEnclave::launch(&mut m, gpu2_options()).unwrap();
    let s1 = HixSession::connect(&mut m, &mut enclave1).unwrap();
    let s2 = HixSession::connect_with(&mut m, &mut enclave2, 1 << 20, b"u2").unwrap();
    assert!(!s1.enclave_terminated(&mut m).unwrap());
    assert!(!s2.enclave_terminated(&mut m).unwrap());
    // GPU2's enclave goes down first: only ITS session is notified.
    enclave2.shutdown(&mut m).unwrap();
    assert!(
        s2.enclave_terminated(&mut m).unwrap(),
        "§4.2.3: user enclaves are notified of graceful termination"
    );
    assert!(
        !s1.enclave_terminated(&mut m).unwrap(),
        "a peer GPU enclave's termination must not leak into GPU1's sessions"
    );
    enclave1.shutdown(&mut m).unwrap();
    assert!(s1.enclave_terminated(&mut m).unwrap());
}
