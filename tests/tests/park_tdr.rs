//! Sealed-state parking under TDR: a session squeezed out of the
//! bounded resident set into sealed parking survives a full secure
//! device reset that happens *while it is parked*, and its re-admission
//! recovers through the ordinary re-establishment path — fresh keys, a
//! journal replay, byte-identical device state. Parking never resumes
//! device context; it rebuilds it, which is exactly why a reset in the
//! middle is survivable.

use hix_core::{GpuEnclave, GpuEnclaveOptions, HixSession};
use hix_driver::rig::{standard_rig, RigOptions};
use hix_sim::fault::{FaultConfig, FaultPlan};
use hix_sim::Payload;

#[test]
fn parked_session_survives_a_secure_reset_and_recovers_via_replay() {
    let mut m = standard_rig(RigOptions::default());
    let mut enclave = GpuEnclave::launch(
        &mut m,
        GpuEnclaveOptions {
            // Two live slots: the third tenant forces the admission
            // controller to park the least-recently-served session.
            max_resident: 2,
            // Transparent recovery is the subject; the repeat-offender
            // policy has its own tests.
            evict_after: u32::MAX,
            ..GpuEnclaveOptions::default()
        },
    )
    .expect("enclave launches");

    // The victim plants data, then goes idle.
    let mut victim = HixSession::connect(&mut m, &mut enclave).expect("victim");
    let plant = victim.malloc(&mut m, &mut enclave, 4096).expect("malloc");
    let secret: Vec<u8> = (0..4096u32).map(|i| (i.wrapping_mul(31) ^ 0xA7) as u8).collect();
    victim
        .memcpy_htod(&mut m, &mut enclave, plant, &Payload::from_bytes(secret.clone()))
        .expect("plant");
    let before = victim
        .memcpy_dtoh(&mut m, &mut enclave, plant, 4096)
        .expect("dtoh before parking");
    assert_eq!(before.bytes(), &secret[..]);

    // Two more tenants: the second connect overflows the resident bound
    // and the idle victim is the LRU choice — sealed out, not dropped.
    let mut offender = HixSession::connect(&mut m, &mut enclave).expect("offender");
    let off_a = offender.malloc(&mut m, &mut enclave, 8192).expect("malloc");
    let off_b = offender.malloc(&mut m, &mut enclave, 8192).expect("malloc");
    let _third = HixSession::connect(&mut m, &mut enclave).expect("third tenant");
    assert!(
        enclave.is_parked(victim.id()),
        "the admission bound must park the least-recently-served session"
    );
    assert_eq!(enclave.parked_count(), 1);
    assert!(
        m.trace().metrics().counter("enclave.sessions_parked") >= 1,
        "parking must be visible in the metrics registry"
    );

    // With the victim parked, wedge the device: a context that ignores
    // the kill doorbell escalates the watchdog to a full secure reset
    // (VRAM scrub, re-measurement, every resident session staled).
    m.set_fault_plan(FaultPlan::new(
        0x9A4B_0001,
        FaultConfig {
            gpu_hang_pm: 100,
            gpu_wedge_pm: 1000,
            ..FaultConfig::none()
        },
    ));
    offender
        .memcpy_htod(
            &mut m,
            &mut enclave,
            off_a,
            &Payload::from_bytes(vec![0x5C; 8192]),
        )
        .expect("offender htod");
    let mut ops = 0;
    while m.trace().metrics().counter("watchdog.resets") == 0 {
        offender
            .memcpy_dtod(&mut m, &mut enclave, off_a, off_b, 8192)
            .expect("offender dtod");
        ops += 1;
        assert!(ops < 200, "the fault plan never escalated to a secure reset");
    }
    m.clear_fault_plan();
    assert!(
        enclave.is_parked(victim.id()),
        "the reset must not disturb the sealed parked record"
    );

    // Re-admission: one resume round-trip unseals the parked record,
    // which re-enters as a stale tombstone — so recovery runs the full
    // re-establishment (fresh keys, journal replay), never a resume of
    // pre-reset device state.
    let reestablished = victim.resume(&mut m, &mut enclave).expect("resume");
    assert!(reestablished, "a parked session re-admits via re-establishment");
    assert!(!enclave.is_parked(victim.id()));
    assert!(victim.epoch() > 0, "re-admission must mint fresh keys");
    assert!(victim.journal_len() > 0, "the replay journal drove recovery");
    assert!(
        m.trace().metrics().counter("enclave.sessions_unparked") >= 1,
        "unparking must be visible in the metrics registry"
    );
    // Two live slots, three tenants: re-admitting the victim parks the
    // current LRU resident in turn.
    assert_eq!(enclave.parked_count(), 1, "re-admission parks the next LRU victim");

    let after = victim
        .memcpy_dtoh(&mut m, &mut enclave, plant, 4096)
        .expect("dtoh after re-admission");
    assert_eq!(
        after.bytes(),
        &secret[..],
        "journal replay must reconstruct the parked session's state byte-identically"
    );
    // Re-keyed, not resumed: the HtoD nonce counter restarts with the
    // epoch and ends at exactly the fault-free chunk count.
    let chunks = 4096u64.div_ceil(m.model().pipeline_chunk);
    assert_eq!(victim.htod_nonce(), chunks);

    // The offender's own recovery must have left it healthy too —
    // parking and TDR both degrade one tenant, never the fleet.
    let off_back = offender
        .memcpy_dtoh(&mut m, &mut enclave, off_a, 8192)
        .expect("offender dtoh");
    assert_eq!(off_back.bytes(), &[0x5C; 8192][..]);
}
