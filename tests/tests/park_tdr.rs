//! Sealed-state parking under TDR: a session squeezed out of the
//! bounded resident set into sealed parking survives a full secure
//! device reset that happens *while it is parked*, and its re-admission
//! recovers through the ordinary re-establishment path — fresh keys, a
//! journal replay, byte-identical device state. Parking never resumes
//! device context; it rebuilds it, which is exactly why a reset in the
//! middle is survivable.

use hix_core::{GpuEnclave, GpuEnclaveOptions, HixSession};
use hix_driver::rig::{standard_rig, RigOptions};
use hix_sim::fault::{FaultConfig, FaultPlan};
use hix_sim::Payload;

#[test]
fn parked_session_survives_a_secure_reset_and_recovers_via_replay() {
    let mut m = standard_rig(RigOptions::default());
    let mut enclave = GpuEnclave::launch(
        &mut m,
        GpuEnclaveOptions {
            // Two live slots: the third tenant forces the admission
            // controller to park the least-recently-served session.
            max_resident: 2,
            // Transparent recovery is the subject; the repeat-offender
            // policy has its own tests.
            evict_after: u32::MAX,
            ..GpuEnclaveOptions::default()
        },
    )
    .expect("enclave launches");

    // The victim plants data, then goes idle.
    let mut victim = HixSession::connect(&mut m, &mut enclave).expect("victim");
    let plant = victim.malloc(&mut m, &mut enclave, 4096).expect("malloc");
    let secret: Vec<u8> = (0..4096u32).map(|i| (i.wrapping_mul(31) ^ 0xA7) as u8).collect();
    victim
        .memcpy_htod(&mut m, &mut enclave, plant, &Payload::from_bytes(secret.clone()))
        .expect("plant");
    let before = victim
        .memcpy_dtoh(&mut m, &mut enclave, plant, 4096)
        .expect("dtoh before parking");
    assert_eq!(before.bytes(), &secret[..]);

    // Two more tenants: the second connect overflows the resident bound
    // and the idle victim is the LRU choice — sealed out, not dropped.
    let mut offender = HixSession::connect(&mut m, &mut enclave).expect("offender");
    let off_a = offender.malloc(&mut m, &mut enclave, 8192).expect("malloc");
    let off_b = offender.malloc(&mut m, &mut enclave, 8192).expect("malloc");
    let _third = HixSession::connect(&mut m, &mut enclave).expect("third tenant");
    assert!(
        enclave.is_parked(victim.id()),
        "the admission bound must park the least-recently-served session"
    );
    assert_eq!(enclave.parked_count(), 1);
    assert!(
        m.trace().metrics().counter("enclave.sessions_parked") >= 1,
        "parking must be visible in the metrics registry"
    );

    // With the victim parked, wedge the device: a context that ignores
    // the kill doorbell escalates the watchdog to a full secure reset
    // (VRAM scrub, re-measurement, every resident session staled).
    m.set_fault_plan(FaultPlan::new(
        0x9A4B_0001,
        FaultConfig {
            gpu_hang_pm: 100,
            gpu_wedge_pm: 1000,
            ..FaultConfig::none()
        },
    ));
    offender
        .memcpy_htod(
            &mut m,
            &mut enclave,
            off_a,
            &Payload::from_bytes(vec![0x5C; 8192]),
        )
        .expect("offender htod");
    let mut ops = 0;
    while m.trace().metrics().counter("watchdog.resets") == 0 {
        offender
            .memcpy_dtod(&mut m, &mut enclave, off_a, off_b, 8192)
            .expect("offender dtod");
        ops += 1;
        assert!(ops < 200, "the fault plan never escalated to a secure reset");
    }
    m.clear_fault_plan();
    assert!(
        enclave.is_parked(victim.id()),
        "the reset must not disturb the sealed parked record"
    );

    // Re-admission: one resume round-trip unseals the parked record,
    // which re-enters as a stale tombstone — so recovery runs the full
    // re-establishment (fresh keys, journal replay), never a resume of
    // pre-reset device state.
    let reestablished = victim.resume(&mut m, &mut enclave).expect("resume");
    assert!(reestablished, "a parked session re-admits via re-establishment");
    assert!(!enclave.is_parked(victim.id()));
    assert!(victim.epoch() > 0, "re-admission must mint fresh keys");
    assert!(victim.journal_len() > 0, "the replay journal drove recovery");
    assert!(
        m.trace().metrics().counter("enclave.sessions_unparked") >= 1,
        "unparking must be visible in the metrics registry"
    );
    // Two live slots, three tenants: re-admitting the victim parks the
    // current LRU resident in turn.
    assert_eq!(enclave.parked_count(), 1, "re-admission parks the next LRU victim");

    let after = victim
        .memcpy_dtoh(&mut m, &mut enclave, plant, 4096)
        .expect("dtoh after re-admission");
    assert_eq!(
        after.bytes(),
        &secret[..],
        "journal replay must reconstruct the parked session's state byte-identically"
    );
    // Re-keyed, not resumed: the HtoD nonce counter restarts with the
    // epoch and ends at exactly the fault-free chunk count.
    let chunks = 4096u64.div_ceil(m.model().pipeline_chunk);
    assert_eq!(victim.htod_nonce(), chunks);

    // The offender's own recovery must have left it healthy too —
    // parking and TDR both degrade one tenant, never the fleet.
    let off_back = offender
        .memcpy_dtoh(&mut m, &mut enclave, off_a, 8192)
        .expect("offender dtoh");
    assert_eq!(off_back.bytes(), &[0x5C; 8192][..]);
}

#[test]
fn parked_session_unparks_on_a_different_shard_with_fresh_keys() {
    use hix_core::fabric::{Fabric, FabricOptions};
    use hix_driver::rig::fabric_rig;

    // Two single-GPU shards behind one switch; the session parks on
    // shard 0 and is unparked on shard 1 — a different GPU enclave with
    // its own sealing keys, contexts, and staging arena.
    let (mut m, topo) = fabric_rig(RigOptions::default(), 2, 2);
    let mut fabric = Fabric::launch(&mut m, &topo, FabricOptions::default()).expect("fabric");
    let (sid, mut mover) = fabric.connect(&mut m, 1 << 20, b"mover").expect("connect");
    let from = fabric.shard_of(sid).expect("placed");
    let to = 1 - from;

    let plant = mover
        .malloc(&mut m, fabric.shard_mut(from), 4096)
        .expect("malloc");
    let secret: Vec<u8> = (0..4096u32).map(|i| (i.wrapping_mul(29) ^ 0x5D) as u8).collect();
    mover
        .memcpy_htod(&mut m, fabric.shard_mut(from), plant, &Payload::from_bytes(secret.clone()))
        .expect("plant");
    assert_eq!(mover.epoch(), 0, "no recovery has happened yet");

    // Park on the source shard: the context dies, staging is freed with
    // scrub-on-free, and only the sealed 13-byte record remains.
    let old_id = mover.id();
    fabric.park(&mut m, sid).expect("park");
    assert!(fabric.shard(from).is_parked(old_id));

    // Migrate: the source unseals and exports, the target re-seals the
    // record under ITS park key and adopts the endpoint.
    fabric
        .migrate_session(&mut m, sid, &mut mover, to)
        .expect("cross-shard migration");
    assert_eq!(fabric.shard_of(sid), Some(to));
    // Old shard keeps NOTHING of the session: no resident context, no
    // parked record (its staging was scrubbed at park time).
    assert!(!fabric.shard(from).is_parked(old_id));
    assert_eq!(fabric.shard(from).session_count(), 0);
    assert_eq!(fabric.shard(from).parked_count(), 0);
    assert_eq!(m.trace().metrics().counter("enclave.sessions_exported"), 1);
    assert_eq!(m.trace().metrics().counter("enclave.sessions_adopted"), 1);
    // The migrant sits parked on the target shard until re-admission
    // (session ids are per-enclave namespaces; the adopted id comes
    // from the TARGET's id space).
    assert!(fabric.shard(to).is_parked(mover.id()));

    // Re-admission on the new shard runs the full re-establishment:
    // attestation against the new enclave, fresh keys, journal replay.
    let reestablished = mover
        .resume(&mut m, fabric.shard_mut(to))
        .expect("resume on the adopting shard");
    assert!(reestablished, "unpark on a different shard re-establishes");
    assert!(!fabric.shard(to).is_parked(mover.id()));
    assert!(mover.epoch() > 0, "the adopting shard must mint fresh keys");
    assert!(mover.journal_len() > 0, "the replay journal drove the rebuild");
    let back = mover
        .memcpy_dtoh(&mut m, fabric.shard_mut(to), plant, 4096)
        .expect("dtoh on the adopting shard");
    assert_eq!(
        back.bytes(),
        &secret[..],
        "journal replay must reconstruct the migrated session byte-identically"
    );
}
