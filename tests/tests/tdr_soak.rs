//! Differential TDR soak: the same seeded matrix workload runs
//! fault-free and under seeded *device*-fault profiles (kernel hangs,
//! wedged contexts, lost completions, live-VRAM bit flips, spurious
//! engine faults). The watchdog + journal-replay runtime must deliver
//! **byte-identical GPU results** in every case, same-seed reruns must
//! be trace-identical, the fault ledger must reconcile exactly, and a
//! secret planted in an idle victim session's VRAM must be
//! unrecoverable after any secure reset — while remaining present when
//! no reset happened (the positive control for the probe).

use hix_core::multiuser::{
    run_multiuser_degraded, run_multiuser_mixed, Mode, SessionFaults, TaskSpec, EVICT_AFTER,
};
use hix_core::{GpuEnclave, GpuEnclaveOptions, HixSession};
use hix_driver::rig::{standard_rig, RigOptions, GPU_BDF};
use hix_gpu::regs::bar0;
use hix_pcie::config::BarIndex;
use hix_platform::Machine;
use hix_sim::fault::{FaultConfig, FaultPlan};
use hix_sim::{CostModel, EventKind, Nanos, Payload};
use hix_testkit::Rng;
use hix_workloads::all_kernels;
use std::fmt::Write;

/// Matrix-mul rounds per run (each its own session, so recovery state
/// never leaks across rounds).
const ROUNDS: u32 = 3;
/// Matrix dimension (24×24 i32: several sealed chunks per transfer).
const N: u64 = 24;
/// The secret an idle victim session plants in VRAM before the faults
/// start. Only a secure reset's scrub may remove it; nothing in the
/// soak legitimately re-uploads it.
const NEEDLE: &[u8] = b"TDR-SOAK-RESIDUE-SENTINEL";

struct SoakRun {
    results: Vec<Vec<u8>>,
    /// `fault.injected` + `fault.detected`: the event-count ledger.
    ledgered: u64,
    injected_gpu: u64,
    fault_events: u64,
    hangs: u64,
    kills: u64,
    resets: u64,
    recoveries: u64,
    secret_in_vram: bool,
    transcript: String,
    snapshot: String,
}

fn rig() -> Machine {
    let m = standard_rig(RigOptions {
        kernels: all_kernels(),
        ..RigOptions::default()
    });
    m.trace().set_recording(true);
    m
}

fn matrix_bytes(rng: &mut Rng, n: u64) -> Vec<u8> {
    (0..n * n)
        .flat_map(|_| ((rng.u32() % 64) as i32).to_le_bytes())
        .collect()
}

/// Scans the low 64 MiB of VRAM for `needle` by reading BAR1 directly
/// off the device model — the bus-analyzer probe that works regardless
/// of MMIO lockdown.
fn vram_probe(m: &mut Machine, needle: &[u8]) -> bool {
    let dev = m.device_mut(GPU_BDF).expect("gpu present");
    let mut saved_aperture = [0u8; 8];
    dev.mmio_read(BarIndex(0), bar0::APERTURE, &mut saved_aperture);
    dev.mmio_write(BarIndex(0), bar0::APERTURE, &0u64.to_le_bytes());
    let mut found = false;
    let overlap = needle.len() - 1;
    let mut tail = vec![0u8; overlap];
    for page in 0..16384u64 {
        let mut buf = vec![0u8; 4096];
        dev.mmio_read(BarIndex(1), page * 4096, &mut buf);
        let mut window = tail.clone();
        window.extend_from_slice(&buf);
        if window.windows(needle.len()).any(|w| w == needle) {
            found = true;
            break;
        }
        tail.copy_from_slice(&buf[buf.len() - overlap..]);
    }
    dev.mmio_write(BarIndex(0), bar0::APERTURE, &saved_aperture);
    found
}

/// One full soak run. The victim plants its secret *before* the fault
/// plan goes live (the plant itself must never need recovery), then
/// stays idle so no replay ever re-uploads it. Eviction is disabled:
/// transparent recovery is the subject here, the repeat-offender policy
/// has its own tests.
fn soak(seed: u64, profile: Option<FaultConfig>) -> SoakRun {
    let mut m = rig();
    let mut enclave = GpuEnclave::launch(
        &mut m,
        GpuEnclaveOptions {
            evict_after: u32::MAX,
            ..GpuEnclaveOptions::default()
        },
    )
    .expect("launch");
    let mut victim = HixSession::connect(&mut m, &mut enclave).expect("victim session");
    let plant = victim.malloc(&mut m, &mut enclave, 4096).expect("victim malloc");
    let secret: Vec<u8> = NEEDLE.iter().copied().cycle().take(4096).collect();
    victim
        .memcpy_htod(&mut m, &mut enclave, plant, &Payload::from_bytes(secret))
        .expect("victim plant");
    if let Some(cfg) = profile {
        m.set_fault_plan(FaultPlan::new(seed ^ 0x7D12, cfg));
    }
    let mut wl = Rng::new(seed);
    let mut results = Vec::new();
    for round in 0..ROUNDS {
        let mut s = HixSession::connect(&mut m, &mut enclave)
            .unwrap_or_else(|e| panic!("round {round}: connect: {e}"));
        s.load_module(&mut m, &mut enclave, "matrix.mul").expect("module");
        let bytes = N * N * 4;
        let a = s.malloc(&mut m, &mut enclave, bytes).expect("malloc a");
        let b = s.malloc(&mut m, &mut enclave, bytes).expect("malloc b");
        let c = s.malloc(&mut m, &mut enclave, bytes).expect("malloc c");
        let av = matrix_bytes(&mut wl, N);
        let bv = matrix_bytes(&mut wl, N);
        s.memcpy_htod(&mut m, &mut enclave, a, &Payload::from_bytes(av))
            .unwrap_or_else(|e| panic!("round {round}: htod a: {e}"));
        s.memcpy_htod(&mut m, &mut enclave, b, &Payload::from_bytes(bv))
            .unwrap_or_else(|e| panic!("round {round}: htod b: {e}"));
        s.launch(&mut m, &mut enclave, "matrix.mul", &[a.value(), b.value(), c.value(), N])
            .unwrap_or_else(|e| panic!("round {round}: launch: {e}"));
        s.sync(&mut m, &mut enclave)
            .unwrap_or_else(|e| panic!("round {round}: sync: {e}"));
        let out = s
            .memcpy_dtoh(&mut m, &mut enclave, c, bytes)
            .unwrap_or_else(|e| panic!("round {round}: dtoh: {e}"));
        results.push(out.bytes().to_vec());
        s.close(&mut m, &mut enclave)
            .unwrap_or_else(|e| panic!("round {round}: close: {e}"));
    }
    m.clear_fault_plan();
    let secret_in_vram = vram_probe(&mut m, NEEDLE);
    let mut transcript = String::new();
    writeln!(transcript, "=== tdr soak @ {}", m.clock().now()).unwrap();
    for ev in m.trace().events() {
        writeln!(transcript, "{ev:?}").unwrap();
    }
    transcript.push_str(&m.trace().summary());
    transcript.push_str(&m.trace().obs().snapshot());
    let mx = m.trace().metrics();
    let injected_gpu = mx.counter("fault.injected.gpu.hang")
        + mx.counter("fault.injected.gpu.wedge")
        + mx.counter("fault.injected.gpu.lost_completion")
        + mx.counter("fault.injected.gpu.vram_flip")
        + mx.counter("fault.injected.gpu.spurious");
    SoakRun {
        results,
        ledgered: mx.counter("fault.injected") + mx.counter("fault.detected"),
        injected_gpu,
        fault_events: m.trace().count(EventKind::Fault),
        hangs: mx.counter("watchdog.hangs_detected"),
        kills: mx.counter("watchdog.kills"),
        resets: mx.counter("watchdog.resets"),
        recoveries: mx.counter("watchdog.recoveries"),
        secret_in_vram,
        snapshot: m.trace().obs().snapshot(),
        transcript,
    }
}

/// The acceptance sweep: 3 seeds × {clean, gpu-light, gpu-heavy}.
#[test]
fn gpu_faulted_runs_are_byte_identical_to_clean() {
    let mut total_resets = 0u64;
    let mut total_gpu_injected = 0u64;
    for seed in [0x7D20_0001u64, 0x7D20_0002, 0x7D20_0003] {
        let clean = soak(seed, None);
        assert_eq!(clean.ledgered, 0, "no plan, no faults (seed {seed:#x})");
        for (counter, v) in [
            ("hangs", clean.hangs),
            ("kills", clean.kills),
            ("resets", clean.resets),
            ("recoveries", clean.recoveries),
        ] {
            assert_eq!(v, 0, "clean run recorded watchdog {counter} (seed {seed:#x})");
        }
        assert!(
            clean.secret_in_vram,
            "positive control: with no reset the idle victim's plant must be visible (seed {seed:#x})"
        );
        for (tag, cfg) in [
            ("gpu-light", FaultConfig::gpu_light()),
            ("gpu-heavy", FaultConfig::gpu_heavy()),
        ] {
            let faulted = soak(seed, Some(cfg));
            assert_eq!(
                faulted.results, clean.results,
                "{tag} faults changed GPU results (seed {seed:#x})"
            );
            assert!(faulted.ledgered > 0, "{tag} plan never fired (seed {seed:#x})");
            assert_eq!(
                faulted.fault_events, faulted.ledgered,
                "Fault events must reconcile with the injected+detected ledger ({tag}, seed {seed:#x})"
            );
            if faulted.resets > 0 {
                assert!(
                    !faulted.secret_in_vram,
                    "victim secret survived a secure reset ({tag}, seed {seed:#x})"
                );
            } else {
                assert!(
                    faulted.secret_in_vram,
                    "no reset happened, yet the plant vanished ({tag}, seed {seed:#x})"
                );
            }
            total_resets += faulted.resets;
            total_gpu_injected += faulted.injected_gpu;
        }
    }
    assert!(
        total_gpu_injected > 0,
        "the sweep never injected a device fault — the profiles are dead"
    );
    assert!(
        total_resets > 0,
        "the sweep never exercised a secure reset — the scrub assertion is vacuous"
    );
}

#[test]
fn same_seed_gpu_faulted_reruns_are_trace_identical() {
    let a = soak(0x7D2D_5EED, Some(FaultConfig::gpu_heavy()));
    let b = soak(0x7D2D_5EED, Some(FaultConfig::gpu_heavy()));
    assert!(a.injected_gpu > 0, "the heavy plan must inject device faults");
    if a.transcript != b.transcript {
        let line = a
            .transcript
            .lines()
            .zip(b.transcript.lines())
            .position(|(x, y)| x != y)
            .map(|i| {
                format!(
                    "first diverging line {}:\n  run1: {}\n  run2: {}",
                    i,
                    a.transcript.lines().nth(i).unwrap_or("<eof>"),
                    b.transcript.lines().nth(i).unwrap_or("<eof>"),
                )
            })
            .unwrap_or_else(|| "lengths differ".into());
        panic!("same-seed TDR reruns diverged — device-fault injection is not deterministic.\n{line}");
    }
    assert_eq!(a.snapshot, b.snapshot, "metrics snapshots must agree too");
}

/// The quarantine bound at the layer where peers exist: a permanently
/// wedging tenant costs each healthy peer at most `EVICT_AFTER` blocked
/// windows (plus scheduling slack), no matter how many more wedges it
/// would have caused — the repeat-offender eviction caps the damage.
#[test]
fn permanently_hung_context_never_stalls_peers_beyond_quarantine_bound() {
    let model = CostModel::paper();
    let spec = TaskSpec {
        name: "soak-peer".into(),
        htod: 8 << 20,
        dtoh: 4 << 20,
        kernel_time: Nanos::from_millis(12),
        launches: 2,
    };
    let specs = vec![spec; 4];
    let plain = run_multiuser_mixed(&model, &specs, Mode::Hix);
    let mut faults = vec![SessionFaults::default(); 4];
    faults[0].tdr_resets = u32::MAX; // wedges forever, or would
    let degraded = run_multiuser_degraded(&model, &specs, Mode::Hix, &faults);
    assert!(degraded.evicted[0], "a forever-wedging context must be evicted");
    let per_offense = model.tdr_patience()
        + model.tdr_kill_grace() * 3
        + model.tdr_reset_penalty()
        + model.ctx_switch * 2;
    let bound = per_offense * u64::from(EVICT_AFTER);
    for peer in 1..4 {
        assert!(
            degraded.completions[peer] <= plain.completions[peer] + bound,
            "peer {peer} stalled past the quarantine bound: {:?} vs {:?} + {bound:?}",
            degraded.completions[peer],
            plain.completions[peer],
        );
        assert!(!degraded.evicted[peer]);
    }
}
