//! Property-based tests over the crypto substrate: OCB AEAD laws, bignum
//! algebra, and payload invariants.

use hix_crypto::bignum::Uint;
use hix_crypto::ocb::{Key, Nonce, Ocb, TAG_LEN};
use hix_sim::Payload;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn ocb_roundtrip(
        key in prop::array::uniform16(any::<u8>()),
        counter in any::<u64>(),
        aad in prop::collection::vec(any::<u8>(), 0..64),
        plaintext in prop::collection::vec(any::<u8>(), 0..512),
    ) {
        let ocb = Ocb::new(&Key::from_bytes(key));
        let nonce = Nonce::from_counter(counter);
        let sealed = ocb.seal(&nonce, &aad, &plaintext);
        prop_assert_eq!(sealed.len(), plaintext.len() + TAG_LEN);
        let opened = ocb.open(&nonce, &aad, &sealed).unwrap();
        prop_assert_eq!(opened, plaintext);
    }

    #[test]
    fn ocb_any_bit_flip_is_detected(
        plaintext in prop::collection::vec(any::<u8>(), 1..256),
        flip_byte in any::<prop::sample::Index>(),
        flip_bit in 0u8..8,
    ) {
        let ocb = Ocb::new(&Key::from_bytes([9u8; 16]));
        let nonce = Nonce::from_counter(5);
        let mut sealed = ocb.seal(&nonce, b"aad", &plaintext);
        let idx = flip_byte.index(sealed.len());
        sealed[idx] ^= 1 << flip_bit;
        prop_assert!(ocb.open(&nonce, b"aad", &sealed).is_err());
    }

    #[test]
    fn ocb_ciphertexts_differ_across_nonces(
        plaintext in prop::collection::vec(any::<u8>(), 16..128),
        c1 in any::<u64>(),
        c2 in any::<u64>(),
    ) {
        prop_assume!(c1 != c2);
        let ocb = Ocb::new(&Key::from_bytes([1u8; 16]));
        let s1 = ocb.seal(&Nonce::from_counter(c1), b"", &plaintext);
        let s2 = ocb.seal(&Nonce::from_counter(c2), b"", &plaintext);
        prop_assert_ne!(s1, s2, "nonce reuse would be catastrophic");
    }

    #[test]
    fn bignum_modpow_addition_law(
        base in 2u64..1_000_000,
        e1 in 0u64..64,
        e2 in 0u64..64,
        modulus in 3u64..1_000_003,
    ) {
        // a^(e1+e2) = a^e1 * a^e2 (mod m)
        let m = Uint::from_u64(modulus);
        let a = Uint::from_u64(base);
        let lhs = a.modpow(&Uint::from_u64(e1 + e2), &m);
        let x = a.modpow(&Uint::from_u64(e1), &m);
        let y = a.modpow(&Uint::from_u64(e2), &m);
        let rhs = x.modmul(&y, &m);
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn bignum_bytes_roundtrip(bytes in prop::collection::vec(any::<u8>(), 0..64)) {
        let u = Uint::from_be_bytes(&bytes);
        let canonical: Vec<u8> = bytes.iter().copied().skip_while(|&b| b == 0).collect();
        prop_assert_eq!(u.to_be_bytes(), canonical);
    }

    #[test]
    fn bignum_rem_matches_u128(a in any::<u128>(), m in 1u64..u64::MAX) {
        let big_a = Uint::from_be_bytes(&a.to_be_bytes());
        let big_m = Uint::from_u64(m);
        prop_assert_eq!(big_a.rem(&big_m), Uint::from_u64((a % m as u128) as u64));
    }

    #[test]
    fn payload_chunk_concat_identity(
        data in prop::collection::vec(any::<u8>(), 0..512),
        chunk in 1u64..64,
    ) {
        let p = Payload::from_bytes(data.clone());
        let back = Payload::concat(p.chunks(chunk));
        prop_assert_eq!(back.bytes(), &data[..]);
    }

    #[test]
    fn synthetic_chunks_preserve_length(len in 0u64..1_000_000, chunk in 1u64..5000) {
        let parts = Payload::synthetic(len).chunks(chunk);
        prop_assert_eq!(parts.iter().map(Payload::len).sum::<u64>(), len);
        prop_assert!(parts.iter().all(|p| p.len() <= chunk));
    }

    #[test]
    fn sealed_stream_len_is_consistent(len in 1u64..10_000_000, chunk in 1u64..100_000) {
        let sealed = hix_core::channel::sealed_stream_len(len, chunk);
        let chunks = len.div_ceil(chunk);
        prop_assert_eq!(sealed, len + chunks * TAG_LEN as u64);
    }
}

#[test]
fn drbg_streams_are_seed_separated() {
    use hix_crypto::drbg::HmacDrbg;
    let mut seen = std::collections::HashSet::new();
    for seed in 0u32..32 {
        let mut rng = HmacDrbg::new(&seed.to_le_bytes());
        assert!(seen.insert(rng.bytes(16)), "seed {seed} collided");
    }
}
