//! Property-based tests over the crypto substrate: OCB AEAD laws, bignum
//! algebra, and payload invariants — on the in-tree `hix-testkit` harness.

use hix_crypto::bignum::Uint;
use hix_crypto::ocb::{Key, Nonce, Ocb, TAG_LEN};
use hix_sim::Payload;
use hix_testkit::prop::prop;

#[test]
fn ocb_roundtrip() {
    prop("ocb_roundtrip").run(|s| {
        let key = s.array_u8::<16>();
        let counter = s.u64();
        let aad = s.vec_u8(0..64);
        let plaintext = s.vec_u8(0..512);
        let ocb = Ocb::new(&Key::from_bytes(key));
        let nonce = Nonce::from_counter(counter);
        let sealed = ocb.seal(&nonce, &aad, &plaintext);
        assert_eq!(sealed.len(), plaintext.len() + TAG_LEN);
        let opened = ocb.open(&nonce, &aad, &sealed).unwrap();
        assert_eq!(opened, plaintext);
    });
}

#[test]
fn ocb_any_bit_flip_is_detected() {
    prop("ocb_any_bit_flip_is_detected").run(|s| {
        let plaintext = s.vec_u8(1..256);
        let ocb = Ocb::new(&Key::from_bytes([9u8; 16]));
        let nonce = Nonce::from_counter(5);
        let mut sealed = ocb.seal(&nonce, b"aad", &plaintext);
        let idx = s.index(sealed.len());
        let flip_bit = s.in_range(0..8) as u8;
        sealed[idx] ^= 1 << flip_bit;
        assert!(ocb.open(&nonce, b"aad", &sealed).is_err());
    });
}

#[test]
fn ocb_ciphertexts_differ_across_nonces() {
    prop("ocb_ciphertexts_differ_across_nonces").run(|s| {
        let plaintext = s.vec_u8(16..128);
        let c1 = s.u64();
        let c2 = s.u64();
        if c1 == c2 {
            return;
        }
        let ocb = Ocb::new(&Key::from_bytes([1u8; 16]));
        let s1 = ocb.seal(&Nonce::from_counter(c1), b"", &plaintext);
        let s2 = ocb.seal(&Nonce::from_counter(c2), b"", &plaintext);
        assert_ne!(s1, s2, "nonce reuse would be catastrophic");
    });
}

#[test]
fn bignum_modpow_addition_law() {
    prop("bignum_modpow_addition_law").run(|s| {
        // a^(e1+e2) = a^e1 * a^e2 (mod m)
        let base = s.in_range(2..1_000_000);
        let e1 = s.in_range(0..64);
        let e2 = s.in_range(0..64);
        let modulus = s.in_range(3..1_000_003);
        let m = Uint::from_u64(modulus);
        let a = Uint::from_u64(base);
        let lhs = a.modpow(&Uint::from_u64(e1 + e2), &m);
        let x = a.modpow(&Uint::from_u64(e1), &m);
        let y = a.modpow(&Uint::from_u64(e2), &m);
        let rhs = x.modmul(&y, &m);
        assert_eq!(lhs, rhs);
    });
}

#[test]
fn bignum_bytes_roundtrip() {
    prop("bignum_bytes_roundtrip").run(|s| {
        let bytes = s.vec_u8(0..64);
        let u = Uint::from_be_bytes(&bytes);
        let canonical: Vec<u8> = bytes.iter().copied().skip_while(|&b| b == 0).collect();
        assert_eq!(u.to_be_bytes(), canonical);
    });
}

#[test]
fn bignum_rem_matches_u128() {
    prop("bignum_rem_matches_u128").run(|s| {
        let a = s.u128();
        let m = s.in_range(1..u64::MAX);
        let big_a = Uint::from_be_bytes(&a.to_be_bytes());
        let big_m = Uint::from_u64(m);
        assert_eq!(big_a.rem(&big_m), Uint::from_u64((a % m as u128) as u64));
    });
}

#[test]
fn payload_chunk_concat_identity() {
    prop("payload_chunk_concat_identity").run(|s| {
        let data = s.vec_u8(0..512);
        let chunk = s.in_range(1..64);
        let p = Payload::from_bytes(data.clone());
        let back = Payload::concat(p.chunks(chunk));
        assert_eq!(back.bytes(), &data[..]);
    });
}

#[test]
fn synthetic_chunks_preserve_length() {
    prop("synthetic_chunks_preserve_length").run(|s| {
        let len = s.in_range(0..1_000_000);
        let chunk = s.in_range(1..5000);
        let parts = Payload::synthetic(len).chunks(chunk);
        assert_eq!(parts.iter().map(Payload::len).sum::<u64>(), len);
        assert!(parts.iter().all(|p| p.len() <= chunk));
    });
}

#[test]
fn sealed_stream_len_is_consistent() {
    prop("sealed_stream_len_is_consistent").run(|s| {
        let len = s.in_range(1..10_000_000);
        let chunk = s.in_range(1..100_000);
        let sealed = hix_core::channel::sealed_stream_len(len, chunk);
        let chunks = len.div_ceil(chunk);
        assert_eq!(sealed, len + chunks * TAG_LEN as u64);
    });
}

#[test]
fn drbg_streams_are_seed_separated() {
    use hix_crypto::drbg::HmacDrbg;
    let mut seen = std::collections::HashSet::new();
    for seed in 0u32..32 {
        let mut rng = HmacDrbg::new(&seed.to_le_bytes());
        assert!(seen.insert(rng.bytes(16)), "seed {seed} collided");
    }
}
