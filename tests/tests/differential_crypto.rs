//! Pinned-tape differential suite for the fast crypto plane: the wide
//! (8-blocks-per-pass) AES core and the zero-allocation OCB
//! `seal_into`/`open_into` paths are checked byte-for-byte against the
//! scalar oracle and the allocating reference paths, on both the
//! hardware and the portable table backend. `differential_crypto.seeds`
//! is replayed before any new cases are generated.

use hix_crypto::aes::Aes128;
use hix_crypto::ocb::{Key, Nonce, Ocb, NONCE_LEN, TAG_LEN};
use hix_testkit::prop::prop;

const SEEDS: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/differential_crypto.seeds");

/// Message lengths the DMA plane cares about: empty, sub-block, exact
/// block, block+1, just under/at/over the 8-block wide-pass boundary,
/// and a multi-pass tail.
const PINNED_LENGTHS: &[usize] = &[0, 15, 16, 17, 112, 127, 128, 129, 144, 256, 1000];

fn hex(s: &str) -> Vec<u8> {
    (0..s.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
        .collect()
}

#[test]
fn wide_aes_matches_scalar_oracle_on_both_backends() {
    prop("wide_aes_matches_scalar_oracle").corpus(SEEDS).run(|s| {
        let key = s.array_u8::<16>();
        let n = (s.u64() % 25) as usize; // crosses 0, one pass, tail
        let blocks: Vec<[u8; 16]> = (0..n).map(|_| s.array_u8::<16>()).collect();
        let aes = Aes128::new(&key);
        for cipher in [Aes128::new(&key), aes.portable()] {
            // Scalar oracle, block by block.
            let expect_enc: Vec<[u8; 16]> =
                blocks.iter().map(|b| aes.encrypt_block(*b)).collect();
            let expect_dec: Vec<[u8; 16]> =
                blocks.iter().map(|b| aes.decrypt_block(*b)).collect();
            let mut wide = blocks.clone();
            cipher.encrypt_blocks(&mut wide);
            assert_eq!(wide, expect_enc, "wide encrypt diverged ({:?})", cipher.backend());
            let mut wide = blocks.clone();
            cipher.decrypt_blocks(&mut wide);
            assert_eq!(wide, expect_dec, "wide decrypt diverged ({:?})", cipher.backend());
            // Inverse property through the wide paths.
            let mut round = blocks.clone();
            cipher.encrypt_blocks(&mut round);
            cipher.decrypt_blocks(&mut round);
            assert_eq!(round, blocks, "wide decrypt(encrypt) != id");
        }
    });
}

#[test]
fn into_paths_match_allocating_paths() {
    prop("into_paths_match_allocating_paths").corpus(SEEDS).run(|s| {
        let key = s.array_u8::<16>();
        let counter = s.u64();
        let aad = s.vec_u8(0..48);
        // Half the cases draw a pinned boundary length, half free-range.
        let len = if s.bool() {
            PINNED_LENGTHS[s.index(PINNED_LENGTHS.len())]
        } else {
            s.vec_u8(0..300).len()
        };
        let plaintext = s.vec_u8(len..len + 1);
        let nonce = Nonce::from_counter(counter);
        for ocb in [Ocb::new(&Key::from_bytes(key)), Ocb::new(&Key::from_bytes(key)).portable()] {
            let sealed = ocb.seal(&nonce, &aad, &plaintext);
            let mut sealed_into = vec![0u8; plaintext.len() + TAG_LEN];
            ocb.seal_into(&nonce, &aad, &plaintext, &mut sealed_into);
            assert_eq!(sealed_into, sealed, "seal_into diverged from seal");
            let mut opened_into = vec![0u8; plaintext.len()];
            ocb.open_into(&nonce, &aad, &sealed, &mut opened_into).unwrap();
            assert_eq!(opened_into, plaintext, "open_into diverged from plaintext");
            assert_eq!(ocb.open(&nonce, &aad, &sealed).unwrap(), plaintext);
        }
    });
}

/// RFC 7253 Appendix A sample vectors, driven through the *multi-block*
/// `seal_into`/`open_into` paths on both backends (the unit tests in
/// `hix-crypto` pin the same vectors through the allocating paths).
#[test]
fn rfc7253_vectors_through_multi_block_paths() {
    let key = Key::from_bytes(hex("000102030405060708090A0B0C0D0E0F").try_into().unwrap());
    let nonce = |last: &str| {
        Nonce::from_bytes(hex(&format!("BBAA9988776655443322110{last}")).try_into().unwrap())
    };
    // (nonce suffix, aad, plaintext, expected sealed stream)
    let vectors: &[(&str, &str, &str, &str)] = &[
        ("0", "", "", "785407BFFFC8AD9EDCC5520AC9111EE6"),
        (
            "1",
            "0001020304050607",
            "0001020304050607",
            "6820B3657B6F615A5725BDA0D3B4EB3A257C9AF1F8F03009",
        ),
        ("2", "0001020304050607", "", "81017F8203F081277152FADE694A0A00"),
        (
            "3",
            "",
            "0001020304050607",
            "45DD69F8F5AAE72414054CD1F35D82760B2CD00D2F99BFA9",
        ),
        (
            "4",
            "000102030405060708090A0B0C0D0E0F",
            "000102030405060708090A0B0C0D0E0F",
            "571D535B60B277188BE5147170A9A22C3AD7A4FF3835B8C5701C1CCEC8FC3358",
        ),
        (
            "6",
            "000102030405060708090A0B0C0D0E0F1011121314151617",
            "000102030405060708090A0B0C0D0E0F1011121314151617",
            "5CE88EC2E0692706A915C00AEB8B23968467B2CFBB580496923A4C5285B1F9AE693442EC9CDFB030",
        ),
        (
            "F",
            "000102030405060708090A0B0C0D0E0F101112131415161718191A1B1C1D1E1F2021222324252627",
            "000102030405060708090A0B0C0D0E0F101112131415161718191A1B1C1D1E1F2021222324252627",
            "4412923493C57D5DE0D700F753CCE0D1D2D95060122E9F15A5DDBFC5787E50B5CC55EE507BCB084E240A353649432AC6C1BDA9ACBA93F56D",
        ),
    ];
    for ocb in [Ocb::new(&key), Ocb::new(&key).portable()] {
        for (last, aad_hex, pt_hex, sealed_hex) in vectors {
            let aad = hex(aad_hex);
            let pt = hex(pt_hex);
            let expect = hex(sealed_hex);
            let mut sealed = vec![0u8; pt.len() + TAG_LEN];
            ocb.seal_into(&nonce(last), &aad, &pt, &mut sealed);
            assert_eq!(
                sealed, expect,
                "seal_into vs RFC 7253 N=..{last} ({:?})",
                ocb.backend()
            );
            let mut opened = vec![0u8; pt.len()];
            ocb.open_into(&nonce(last), &aad, &sealed, &mut opened).unwrap();
            assert_eq!(opened, pt, "open_into vs RFC 7253 N=..{last}");
        }
    }
}

#[test]
fn roundtrip_pinned_lengths_both_backends() {
    let ocb_hw = Ocb::new(&Key::from_bytes([0x42; 16]));
    let ocb_pt = ocb_hw.portable();
    for (i, &len) in PINNED_LENGTHS.iter().enumerate() {
        let plaintext: Vec<u8> = (0..len).map(|j| (j * 31 + i) as u8).collect();
        let nonce = Nonce::from_counter(i as u64 + 1);
        let mut sealed = vec![0u8; len + TAG_LEN];
        ocb_hw.seal_into(&nonce, b"len-sweep", &plaintext, &mut sealed);
        // Both backends produce the same stream and open each other's.
        let mut sealed_pt = vec![0u8; len + TAG_LEN];
        ocb_pt.seal_into(&nonce, b"len-sweep", &plaintext, &mut sealed_pt);
        assert_eq!(sealed_pt, sealed, "backends diverged at len {len}");
        let mut opened = vec![0u8; len];
        ocb_pt.open_into(&nonce, b"len-sweep", &sealed, &mut opened).unwrap();
        assert_eq!(opened, plaintext, "roundtrip failed at len {len}");
        // A truncated or grown stream must never authenticate.
        if len > 0 {
            let mut short = vec![0u8; len - 1];
            assert!(ocb_hw
                .open_into(&nonce, b"len-sweep", &sealed[..len - 1 + TAG_LEN], &mut short)
                .is_err());
        }
    }
}

/// The iterated RFC 7253 check value computed entirely through
/// `seal_into` (every length 0..=127 rides the multi-block path).
#[test]
fn rfc7253_iterated_check_value_through_seal_into() {
    let key = Key::from_bytes({
        let mut k = [0u8; 16];
        k[15] = 128; // num2str(TAGLEN, 8)
        k
    });
    let nonce_of = |n: u32| {
        let mut b = [0u8; NONCE_LEN];
        b[8..].copy_from_slice(&n.to_be_bytes());
        Nonce::from_bytes(b)
    };
    for ocb in [Ocb::new(&key), Ocb::new(&key).portable()] {
        let mut c = Vec::new();
        let seal_into = |nonce: Nonce, aad: &[u8], pt: &[u8]| {
            let mut out = vec![0u8; pt.len() + TAG_LEN];
            ocb.seal_into(&nonce, aad, pt, &mut out);
            out
        };
        for i in 0u32..128 {
            let s = vec![0u8; i as usize];
            c.extend(seal_into(nonce_of(3 * i + 1), &s, &s));
            c.extend(seal_into(nonce_of(3 * i + 2), b"", &s));
            c.extend(seal_into(nonce_of(3 * i + 3), &s, b""));
        }
        let out = seal_into(nonce_of(385), &c, b"");
        assert_eq!(out, hex("67E944D23256C5E0B6C61FA22FDF1EA2"));
    }
}
