//! Determinism regression: the paper's security argument (§4) and
//! evaluation (§5) rest on the claim that the full-system simulation is
//! deterministic — same seed, same enclave/PCIe/GPU interleaving, same
//! virtual-clock accounting, bit for bit. This test runs the
//! `e2e_stacks_agree` scenario twice with the same `hix-testkit` seed
//! and asserts the rendered `hix-sim` traces and stats are
//! byte-identical.

use hix_core::{GpuEnclave, GpuEnclaveOptions, HixSession};
use hix_driver::rig::{standard_rig, RigOptions, GPU_BDF};
use hix_driver::Gdev;
use hix_platform::Machine;
use hix_testkit::Rng;
use hix_workloads::exec::{GdevExec, HixExec};
use hix_workloads::matrix::{MatrixAdd, MatrixMul};
use hix_workloads::{all_kernels, rodinia_suite, Workload};
use std::fmt::Write;

fn rig() -> Machine {
    let m = standard_rig(RigOptions {
        kernels: all_kernels(),
        ..RigOptions::default()
    });
    m.trace().set_recording(true);
    m
}

/// Renders everything observable about one machine run: the full event
/// trace (every event's completion time, duration, kind, and label),
/// the per-category accounting summary, the final virtual clock, and
/// the exported observability artifacts (Perfetto JSON + metrics
/// snapshot) — the exports themselves must be bit-for-bit reproducible.
fn render(m: &Machine, tag: &str, out: &mut String) {
    writeln!(out, "=== {tag} @ {}", m.clock().now()).unwrap();
    for ev in m.trace().events() {
        writeln!(out, "{:?}", ev).unwrap();
    }
    out.push_str(&m.trace().summary());
    out.push_str(&hix_obs::chrome_trace_json(&m.trace().obs().spans(), tag));
    out.push('\n');
    out.push_str(&m.trace().obs().snapshot());
}

/// Runs both stacks (Gdev baseline + full HIX) over a workload, at a
/// problem size perturbed by the seeded RNG, and renders traces+stats.
fn run_both(w: &dyn Workload, rng: &mut Rng, out: &mut String) {
    // The seed drives the problem size, so the transcript covers
    // seed-dependent input generation, not just a fixed scenario.
    let n = w.test_size() + rng.gen_range_usize(0..8);

    let mut m = rig();
    let pid = m.create_process();
    let mut gdev = Gdev::open(&mut m, pid, GPU_BDF).expect("open");
    let stats = w
        .run(&mut m, &mut GdevExec::new(&mut gdev), n)
        .unwrap_or_else(|e| panic!("{} on gdev: {e}", w.name()));
    writeln!(out, "gdev {} n={n} stats={stats:?}", w.name()).unwrap();
    render(&m, "gdev", out);

    let mut m = rig();
    let mut enclave = GpuEnclave::launch(&mut m, GpuEnclaveOptions::default()).expect("enclave");
    let mut session = HixSession::connect(&mut m, &mut enclave).expect("session");
    let stats = w
        .run(&mut m, &mut HixExec::new(&mut session, &mut enclave), n)
        .unwrap_or_else(|e| panic!("{} on hix: {e}", w.name()));
    writeln!(out, "hix {} n={n} stats={stats:?}", w.name()).unwrap();
    render(&m, "hix", out);
}

/// One full transcript of the scenario for a given seed.
fn transcript(seed: u64) -> String {
    let mut rng = Rng::new(seed);
    let mut out = String::new();
    run_both(&MatrixAdd, &mut rng, &mut out);
    run_both(&MatrixMul, &mut rng, &mut out);
    for w in rodinia_suite() {
        run_both(w.as_ref(), &mut rng, &mut out);
    }
    out
}

#[test]
fn same_seed_runs_are_byte_identical() {
    let a = transcript(0x4849_5821);
    let b = transcript(0x4849_5821);
    assert!(!a.is_empty() && a.contains("=== hix"), "transcript rendered");
    if a != b {
        // Point at the first divergence instead of dumping megabytes.
        let line = a
            .lines()
            .zip(b.lines())
            .position(|(x, y)| x != y)
            .map(|i| {
                format!(
                    "first diverging line {}:\n  run1: {}\n  run2: {}",
                    i,
                    a.lines().nth(i).unwrap_or("<eof>"),
                    b.lines().nth(i).unwrap_or("<eof>"),
                )
            })
            .unwrap_or_else(|| "lengths differ".into());
        panic!("same-seed runs diverged — simulation is not deterministic.\n{line}");
    }
}

#[test]
fn different_seeds_change_the_transcript() {
    // Guard against the test trivially passing because the seed is
    // ignored: a different seed must perturb at least one problem size
    // and therefore the trace.
    let a = transcript(1);
    let b = transcript(2);
    assert_ne!(a, b, "seed must actually influence the scenario");
}
